package hpo

import (
	"context"
	"fmt"
	"sync"
	"time"

	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// SHAOptions configure Successive Halving.
type SHAOptions struct {
	// Eta is the halving factor: each round keeps 1/Eta of the candidates.
	// 0 selects 2, the classic halving of the paper's Figure 1.
	Eta int
	// MinBudget floors the per-configuration budget of the first round
	// (useful when the configuration count is so large that B/m cannot
	// support k folds). 0 selects 2·K of the components.
	MinBudget int
	// Workers evaluates each round's configurations concurrently. The
	// result is identical for any worker count (per-trial RNG streams are
	// derived from round and index, not from scheduling). 0 selects 1.
	Workers int
	// Seed drives subset sampling and training.
	Seed uint64
}

func (o SHAOptions) withDefaults(k int) SHAOptions {
	if o.Eta < 2 {
		o.Eta = 2
	}
	if o.MinBudget <= 0 {
		o.MinBudget = 2 * k
	}
	return o
}

// SuccessiveHalving runs the paper's Algorithm 1 skeleton over the given
// configurations: in each iteration every surviving configuration receives
// budget b_t = B/|T_t| and is evaluated by cross-validation; the top 1/Eta
// by score advance, until one configuration remains.
//
// With vanilla components this is plain SHA; with enhanced components
// (group folds + UCB-β scorer) it is the paper's "SHA+".
func SuccessiveHalving(configs []search.Config, ev Evaluator, comps Components, opts SHAOptions) (*Result, error) {
	return SuccessiveHalvingCtx(context.Background(), configs, ev, comps, opts)
}

// SuccessiveHalvingCtx is SuccessiveHalving with cancellation: when ctx is
// cancelled or times out the run stops before starting another evaluation
// and returns ctx's error. Evaluations already in flight are allowed to
// finish, so the run stops within one evaluation of the cancel.
func SuccessiveHalvingCtx(ctx context.Context, configs []search.Config, ev Evaluator, comps Components, opts SHAOptions) (*Result, error) {
	comps = comps.withDefaults()
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: SHA needs at least one configuration")
	}
	if sp := configs[0].Space(); sp != nil {
		if err := validateRun(sp, comps); err != nil {
			return nil, err
		}
	}
	opts = opts.withDefaults(comps.K)
	root := rng.New(opts.Seed ^ 0x5a5a1)
	start := time.Now()
	res := &Result{Method: "sha"}

	current := append([]search.Config(nil), configs...)
	budget := ev.FullBudget()
	round := 0
	var lastScores []ranked
	for len(current) > 1 {
		bt := budget / len(current)
		if bt < opts.MinBudget {
			bt = opts.MinBudget
		}
		if bt > budget {
			bt = budget
		}
		trials, err := evalRound(ctx, ev, comps, current, bt, round, opts.Workers, root)
		if err != nil {
			return nil, err
		}
		scores := make([]ranked, 0, len(current))
		for i, tr := range trials {
			res.Trials = append(res.Trials, tr)
			scores = append(scores, ranked{cfg: current[i], score: tr.Score, order: i})
		}
		keep := len(current) / opts.Eta
		if keep < 1 {
			keep = 1
		}
		current = topConfigs(scores, keep)
		lastScores = scores
		round++
	}
	res.Best = current[0]
	res.BestScore = bestScoreOf(lastScores, res.Best)
	res.Evaluations = len(res.Trials)
	res.Elapsed = time.Since(start)
	return res, nil
}

func init() {
	RegisterFunc(MethodInfo{
		Name:             "sha",
		Description:      "successive halving (Algorithm 1): budget doubles as the candidate set halves",
		BudgetAware:      true,
		HonorsWorkers:    true,
		HonorsMaxConfigs: true,
	}, func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
		o := opts.SHA
		o.Seed = opts.Seed
		if o.Workers == 0 {
			o.Workers = opts.Workers
		}
		configs := space.Enumerate()
		if opts.MaxConfigs > 0 && opts.MaxConfigs < len(configs) {
			// The subsampling stream is rng.New(seed^0xc0de).Split(2) —
			// bit-identical to core.Run's historical root.Split(2) (Split
			// never advances the parent), so CLI and served runs agree on
			// the start set for a given seed.
			configs = space.SampleN(rng.New(opts.Seed^0xc0de).Split(2), opts.MaxConfigs)
		}
		return SuccessiveHalvingCtx(ctx, configs, ev, comps, o)
	})
}

// evalRound evaluates one halving round, optionally with a worker pool.
// Results are ordered by configuration index, so the outcome is identical
// for any worker count. A cancelled ctx stops the round before the next
// evaluation starts.
func evalRound(ctx context.Context, ev Evaluator, comps Components, configs []search.Config, budget, round, workers int, root *rng.RNG) ([]Trial, error) {
	trials := make([]Trial, len(configs))
	if workers <= 1 || len(configs) == 1 {
		for i, cfg := range configs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tr, err := evalTrial(ev, comps, cfg, budget, round, root.Split(trialTag(round, i)))
			if err != nil {
				return nil, err
			}
			trials[i] = tr
		}
		return trials, nil
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				err := ctx.Err()
				var tr Trial
				if err == nil {
					tr, err = evalTrial(ev, comps, configs[i], budget, round, root.Split(trialTag(round, i)))
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					trials[i] = tr
				}
				mu.Unlock()
			}
		}()
	}
	for i := range configs {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return trials, nil
}

// bestScoreOf finds best's score in the final round ranking (0 when the run
// had a single configuration and no evaluations).
func bestScoreOf(rs []ranked, best search.Config) float64 {
	for _, r := range rs {
		if r.cfg.ID() == best.ID() {
			return r.score
		}
	}
	return 0
}

// trialTag derives a deterministic RNG stream tag from round and index.
func trialTag(round, i int) uint64 {
	return uint64(round)*1_000_003 + uint64(i) + 1
}

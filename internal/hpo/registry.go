package hpo

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"enhancedbhpo/internal/search"
)

// RunOptions is the method-agnostic option surface of the registry. The
// shared knobs (Seed, Workers, MaxConfigs, Trials) apply to every method
// that declares the matching capability; the per-method blocks carry the
// full option structs for callers (core.Run) that tune methods directly.
//
// Precedence: Seed always overrides the per-method seeds, exactly as
// core.Run has always done. The other shared knobs only fill per-method
// fields left at zero — a non-zero block setting wins — so existing tuned
// callers keep bit-identical behavior.
type RunOptions struct {
	// Seed drives sampling and training; it overrides the per-method seeds.
	Seed uint64
	// Workers is the evaluation-goroutine count for methods with
	// HonorsWorkers. 0 selects the method default.
	Workers int
	// MaxConfigs caps the configurations considered by methods with
	// HonorsMaxConfigs. 0 selects the method default (or the whole space).
	MaxConfigs int
	// Trials is the evaluation count for full-budget methods with
	// HonorsTrials. 0 selects the method default.
	Trials int

	// Per-method option blocks; zero values select each method's defaults.
	SHA    SHAOptions
	HB     HyperbandOptions
	BOHB   BOHBOptions
	ASHA   ASHAOptions
	PASHA  PASHAOptions
	DEHB   DEHBOptions
	SMAC   SMACOptions
	TPE    TPEOptions
	Grid   GridSearchOptions
	Random RandomSearchOptions
}

// MethodInfo describes a registered optimizer: its canonical name, accepted
// aliases, and which shared RunOptions knobs it honors. Callers that accept
// user-supplied options (the job service) use the capability flags to
// reject settings a method would silently ignore.
type MethodInfo struct {
	// Name is the canonical method name ("sha", "bohb", ...).
	Name string
	// Aliases are alternative accepted names ("hb" for hyperband,
	// "optuna" for tpe).
	Aliases []string
	// Description is a one-line summary for discovery endpoints.
	Description string
	// BudgetAware marks bandit methods that allocate partial budgets;
	// false for the full-budget baselines (random, grid, SMAC, TPE).
	BudgetAware bool
	// HonorsWorkers: RunOptions.Workers controls evaluation concurrency.
	HonorsWorkers bool
	// HonorsMaxConfigs: RunOptions.MaxConfigs caps the configurations
	// considered.
	HonorsMaxConfigs bool
	// HonorsTrials: RunOptions.Trials sets the evaluation count.
	HonorsTrials bool
}

// Method is one registered optimizer: capability metadata plus a
// context-aware entry point. Every method stops before starting another
// evaluation once ctx is cancelled and returns ctx's error.
type Method interface {
	Info() MethodInfo
	Run(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error)
}

// methodFunc adapts a plain function to the Method interface.
type methodFunc struct {
	info MethodInfo
	run  func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error)
}

func (m methodFunc) Info() MethodInfo { return m.info }

func (m methodFunc) Run(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error) {
	return m.run(ctx, space, ev, comps, opts)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Method{}
	// aliasOf maps every accepted name (canonical or alias) to the
	// canonical name.
	aliasOf = map[string]string{}
)

// Register adds a method under its canonical name and aliases. It panics on
// empty or duplicate names: registration happens in init funcs, so a
// collision is a programming error, not a runtime condition.
func Register(m Method) {
	info := m.Info()
	if info.Name == "" {
		panic("hpo: Register with empty method name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	// Validate every name before mutating, so a panic leaves the registry
	// untouched.
	names := append([]string{info.Name}, info.Aliases...)
	for _, n := range names {
		if n == "" {
			panic(fmt.Sprintf("hpo: method %q registers an empty alias", info.Name))
		}
		if _, dup := aliasOf[n]; dup {
			panic(fmt.Sprintf("hpo: duplicate method registration %q", n))
		}
	}
	registry[info.Name] = m
	for _, n := range names {
		aliasOf[n] = info.Name
	}
}

// RegisterFunc registers a plain function as a Method.
func RegisterFunc(info MethodInfo, run func(ctx context.Context, space *search.Space, ev Evaluator, comps Components, opts RunOptions) (*Result, error)) {
	Register(methodFunc{info: info, run: run})
}

// CanonicalName resolves a method name or alias to the canonical name.
func CanonicalName(name string) (string, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	canonical, ok := aliasOf[name]
	return canonical, ok
}

// LookupMethod resolves a method by canonical name or alias.
func LookupMethod(name string) (Method, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	canonical, ok := aliasOf[name]
	if !ok {
		return nil, false
	}
	m, ok := registry[canonical]
	return m, ok
}

// MethodNames returns the sorted canonical names of every registered
// method.
func MethodNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Methods returns every registered method's info, sorted by canonical name.
func Methods() []MethodInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	infos := make([]MethodInfo, 0, len(registry))
	for _, m := range registry {
		infos = append(infos, m.Info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Package hpo implements the bandit-based hyperparameter optimization
// framework of the paper: Successive Halving, Hyperband, BOHB and ASHA,
// plus a random-search baseline. Each method is parameterized by three
// pluggable components — the fold builder, the configuration scorer and the
// (optional) instance groups — so the paper's enhanced variants ("SHA+",
// "HB+", "BOHB+") are the same algorithms run with the group-based folds
// (cv.GroupFolds), the variance/size-aware scorer (scoring.UCBScorer) and
// pre-built groups (grouping.Build), while the vanilla variants use
// stratified folds and the plain mean.
//
// The budget unit is the instance, following the paper: a configuration
// evaluated with budget b trains on cross-validation folds drawn from a
// b-sized subset of the training data.
package hpo

import (
	"fmt"
	"sort"
	"time"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/search"
)

// Components bundles the pluggable pieces shared by every bandit method.
type Components struct {
	// Folds builds cross-validation folds from a budget-sized subset.
	Folds cv.Builder
	// K is the total number of folds per evaluation (the paper uses 5).
	K int
	// Scorer aggregates fold scores into the configuration's ranking score.
	Scorer scoring.Scorer
	// Groups are the §III-A instance groups; nil for vanilla components.
	Groups *grouping.Groups
	// UseF1 scores classification folds by F1 instead of accuracy (the
	// paper reports F1 on the imbalanced datasets). Evaluators wired from
	// these components (NewCVEvaluator) inherit it.
	UseF1 bool
	// Observe, when non-nil, receives every completed Trial as soon as it
	// finishes, in completion order. Optimizers with concurrent workers
	// call it from several goroutines, so implementations must be safe for
	// concurrent use. It exists so a serving layer can report live anytime
	// curves while a run is still in flight.
	Observe func(Trial)
}

// WithF1 returns a copy of the components that scores classification folds
// by F1.
func (c Components) WithF1() Components {
	c.UseF1 = true
	return c
}

// WithObserver returns a copy of the components that reports every
// completed trial to fn (see Observe for the concurrency contract).
func (c Components) WithObserver(fn func(Trial)) Components {
	c.Observe = fn
	return c
}

func (c Components) withDefaults() Components {
	if c.Folds == nil {
		c.Folds = cv.StratifiedKFold{}
	}
	if c.K <= 0 {
		c.K = 5
	}
	if c.Scorer == nil {
		c.Scorer = scoring.MeanScorer{}
	}
	return c
}

// Trial records one configuration evaluation.
type Trial struct {
	// Config is the evaluated configuration.
	Config search.Config
	// Budget is the instance budget b_t used.
	Budget int
	// Round is the halving iteration (or rung) the evaluation belongs to.
	Round int
	// FoldScores are the per-fold validation scores.
	FoldScores []float64
	// Score is the aggregated ranking score (scorer output).
	Score float64
	// Gamma is the sampling ratio in percent used for the score.
	Gamma float64
	// Elapsed is the wall time of this evaluation.
	Elapsed time.Duration
}

// Result is the outcome of one optimization run.
type Result struct {
	// Method names the optimizer that produced the result.
	Method string
	// Best is the selected configuration τ*.
	Best search.Config
	// BestScore is τ*'s final aggregated score.
	BestScore float64
	// Trials is the full evaluation history.
	Trials []Trial
	// Evaluations is len(Trials).
	Evaluations int
	// Elapsed is the total optimization wall time (excluding any final
	// full-data refit done by the caller).
	Elapsed time.Duration
}

// BestTrial returns the highest-scoring trial of the run, preferring the
// largest budget on ties, or nil when no trials were recorded.
func (r *Result) BestTrial() *Trial {
	var best *Trial
	for i := range r.Trials {
		t := &r.Trials[i]
		if best == nil || t.Score > best.Score ||
			(t.Score == best.Score && t.Budget > best.Budget) {
			best = t
		}
	}
	return best
}

// TrialsAt returns the trials of one round (or rung), in arrival order.
func (r *Result) TrialsAt(round int) []Trial {
	var out []Trial
	for _, t := range r.Trials {
		if t.Round == round {
			out = append(out, t)
		}
	}
	return out
}

// ranked pairs a configuration with its score for halving.
type ranked struct {
	cfg   search.Config
	score float64
	order int // arrival order, for deterministic tie-breaks
}

// topConfigs returns the k highest-scoring configurations (ties broken by
// arrival order).
func topConfigs(rs []ranked, k int) []search.Config {
	sorted := append([]ranked(nil), rs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].score != sorted[j].score {
			return sorted[i].score > sorted[j].score
		}
		return sorted[i].order < sorted[j].order
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	out := make([]search.Config, k)
	for i := 0; i < k; i++ {
		out[i] = sorted[i].cfg
	}
	return out
}

// validateRun checks the shared preconditions of the optimizers.
func validateRun(space *search.Space, comps Components) error {
	if space == nil {
		return fmt.Errorf("hpo: nil space")
	}
	if err := space.Validate(); err != nil {
		return err
	}
	if comps.K < 2 {
		return fmt.Errorf("hpo: need at least 2 folds, got %d", comps.K)
	}
	return nil
}

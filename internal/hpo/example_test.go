package hpo_test

import (
	"fmt"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/search"
)

// funcEvaluator tunes an arbitrary black-box function instead of an MLP:
// anything that maps (configuration, budget) to fold-like scores can ride
// the bandit framework. Larger budgets give less noisy measurements, like
// real training does.
type funcEvaluator struct {
	full int
}

func (f funcEvaluator) FullBudget() int { return f.full }

func (f funcEvaluator) Evaluate(c search.Config, budget int, r *rng.RNG) ([]float64, error) {
	x := float64(c.Value("x").(int))
	y := float64(c.Value("y").(int))
	// True quality peaks at (3, 4); noise shrinks with budget.
	quality := 1 - ((x-3)*(x-3)+(y-4)*(y-4))/50
	noise := 0.2 * float64(f.full) / float64(budget) / float64(f.full)
	scores := make([]float64, 5)
	for i := range scores {
		scores[i] = quality + r.NormScaled(0, noise)
	}
	return scores, nil
}

// Successive halving over a custom integer grid with a custom evaluator:
// no datasets, no neural networks — just the bandit machinery.
func ExampleSuccessiveHalving() {
	space := &search.Space{Dims: []search.Dimension{
		{Name: "x", Values: []any{0, 1, 2, 3, 4, 5}},
		{Name: "y", Values: []any{0, 1, 2, 3, 4, 5}},
	}}
	comps := hpo.Components{K: 5, Scorer: scoring.MeanScorer{}}
	res, err := hpo.SuccessiveHalving(space.Enumerate(), funcEvaluator{full: 3600}, comps, hpo.SHAOptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println("best:", res.Best)
	fmt.Println("rounds:", res.Trials[len(res.Trials)-1].Round+1)
	// Output:
	// best: x=3 y=4
	// rounds: 5
}

package hpo

import (
	"math"
	"testing"

	"enhancedbhpo/internal/search"
)

// TestHyperbandBracketSchedule verifies the published bracket arithmetic:
// with R/r_min = eta^s_max, bracket s starts n_s = ceil((s_max+1)·eta^s/(s+1))
// configurations at budget R·eta^{-s}, halving by eta each rung.
func TestHyperbandBracketSchedule(t *testing.T) {
	space, quality := gradedSpace()
	// R = 1600, r_min = 200, eta = 2 -> s_max = 3, brackets s = 3,2,1,0.
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0001}
	res, err := Hyperband(space, ev, vanComps(), HyperbandOptions{Eta: 2, MinBudget: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Collect (round, budget, count) from the trials.
	type key struct{ round, budget int }
	counts := map[key]int{}
	for _, tr := range res.Trials {
		counts[key{tr.Round, tr.Budget}]++
	}
	// Bracket s=3: n = ceil(4·8/4) = 8 configs at budget 200, then 4@400,
	// 2@800, 1@1600 (rounds 0..3).
	want := []struct {
		round, budget, n int
	}{
		{0, 200, 8},
		{1, 400, 4},
		{2, 800, 2},
		{3, 1600, 1},
	}
	for _, wnt := range want {
		if got := counts[key{wnt.round, wnt.budget}]; got != wnt.n {
			t.Errorf("round %d budget %d: %d evaluations, want %d", wnt.round, wnt.budget, got, wnt.n)
		}
	}
	// Bracket s=0 runs ceil(4·1/1) = 4 configs straight at full budget.
	lastRound := 0
	for k := range counts {
		if k.round > lastRound {
			lastRound = k.round
		}
	}
	if got := counts[key{lastRound, 1600}]; got != 4 {
		t.Errorf("final bracket: %d evaluations at full budget, want 4", got)
	}
}

func TestHyperbandMaxBrackets(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 1600, quality: quality, noise: 0.0001}
	full, err := Hyperband(space, ev, vanComps(), HyperbandOptions{Eta: 2, MinBudget: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Hyperband(space, ev, vanComps(), HyperbandOptions{Eta: 2, MinBudget: 200, MaxBrackets: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Trials) >= len(full.Trials) {
		t.Fatalf("capped run evaluated %d >= full %d", len(capped.Trials), len(full.Trials))
	}
}

func TestHyperbandBudgetsNeverExceedFull(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 777, quality: quality, noise: 0.001}
	res, err := Hyperband(space, ev, vanComps(), HyperbandOptions{Eta: 3, MinBudget: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		if tr.Budget > 777 {
			t.Fatalf("budget %d exceeds full %d", tr.Budget, 777)
		}
		if tr.Budget < 30 {
			t.Fatalf("budget %d below minimum", tr.Budget)
		}
	}
}

func TestHyperbandTinyBudgetSingleBracket(t *testing.T) {
	// R < eta·r_min -> s_max = 0: one bracket, full-budget evaluations only.
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 100, quality: quality, noise: 0.0001}
	res, err := Hyperband(space, ev, vanComps(), HyperbandOptions{Eta: 3, MinBudget: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		if tr.Budget != 100 {
			t.Fatalf("single-bracket run used budget %d", tr.Budget)
		}
	}
	if math.IsInf(res.BestScore, -1) {
		t.Fatal("no best score recorded")
	}
}

func TestBOHBSamplesValidConfigsOnly(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 800, quality: quality, noise: 0.001}
	res, err := BOHB(space, ev, vanComps(), BOHBOptions{
		Hyperband: HyperbandOptions{Eta: 2, MinBudget: 100, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, c := range space.Enumerate() {
		valid[c.ID()] = true
	}
	for _, tr := range res.Trials {
		if !valid[tr.Config.ID()] {
			t.Fatalf("BOHB evaluated config %s outside the space", tr.Config.ID())
		}
	}
}

func TestDEHBProposesWithinSpace(t *testing.T) {
	space, quality := gradedSpace()
	ev := &fakeEvaluator{space: space, full: 800, quality: quality, noise: 0.001}
	res, err := DEHB(space, ev, vanComps(), DEHBOptions{
		Hyperband: HyperbandOptions{Eta: 2, MinBudget: 100, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	var configs []search.Config
	for _, tr := range res.Trials {
		configs = append(configs, tr.Config)
	}
	for _, c := range configs {
		for d := range space.Dims {
			if c.Index(d) < 0 || c.Index(d) >= len(space.Dims[d].Values) {
				t.Fatalf("DEHB config index out of range: %s", c.ID())
			}
		}
	}
}

package hpo

import (
	"fmt"
	"testing"

	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// TestEvaluateBatchMatchesSoloBitwise pins the fused-evaluation
// contract end to end at the hpo layer: for a mixed bag of sampled
// configurations — different solvers (including L-BFGS fallbacks),
// architectures and budgets — EvaluateBatch returns, for every request,
// exactly the fold scores a solo Evaluate with the same (cfg, budget,
// rng) produces, at any matmul worker cap.
func TestEvaluateBatchMatchesSoloBitwise(t *testing.T) {
	train := tinyDataset(140, 21)
	base := nn.DefaultConfig()
	base.MaxIter = 6
	base.HiddenLayerSizes = []int{6}
	comps := VanillaComponents(3)
	ev := NewCVEvaluator(train, base, comps)
	space, err := search.TableIIISpace(8)
	if err != nil {
		t.Fatal(err)
	}
	configs := space.SampleN(rng.New(99), 6)
	budgets := []int{60, 60, 100, 140, 60, 100}
	reqs := make([]EvalRequest, len(configs))
	solo := make([]EvalResult, len(configs))
	sawLBFGS := false
	for i, cfg := range configs {
		reqs[i] = EvalRequest{Cfg: cfg, Budget: budgets[i], R: rng.New(uint64(300 + i))}
		scores, err := ev.Evaluate(cfg, budgets[i], rng.New(uint64(300+i)))
		solo[i] = EvalResult{Scores: scores, Err: err}
		if nnCfg, cerr := search.ToNNConfig(cfg, base); cerr == nil && nnCfg.Solver == nn.LBFGS {
			sawLBFGS = true
		}
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			results, stats := ev.EvaluateBatch(reqs, workers)
			if len(results) != len(reqs) {
				t.Fatalf("got %d results for %d requests", len(results), len(reqs))
			}
			for i, res := range results {
				want := solo[i]
				if (res.Err == nil) != (want.Err == nil) {
					t.Fatalf("req %d: err %v, solo err %v", i, res.Err, want.Err)
				}
				if want.Err != nil {
					if res.Err.Error() != want.Err.Error() {
						t.Fatalf("req %d: err %q, solo err %q", i, res.Err, want.Err)
					}
					continue
				}
				if len(res.Scores) != len(want.Scores) {
					t.Fatalf("req %d: %d scores, solo %d", i, len(res.Scores), len(want.Scores))
				}
				for fi := range want.Scores {
					if res.Scores[fi] != want.Scores[fi] {
						t.Fatalf("req %d fold %d: %x != solo %x (not bitwise identical)",
							i, fi, res.Scores[fi], want.Scores[fi])
					}
				}
			}
			if stats.FusedTrials < 2 {
				t.Fatalf("expected ≥2 fused trials, stats=%+v", stats)
			}
			if sawLBFGS && stats.SoloFallbacks == 0 {
				t.Fatalf("lbfgs config present but no solo fallback recorded: %+v", stats)
			}
			if stats.FusedSteps == 0 || stats.StackedRows == 0 {
				t.Fatalf("no fused work recorded: %+v", stats)
			}
		})
	}
}

// TestEvaluateBatchErrors pins the error surface: empty batches are
// no-ops, and a request whose fold construction fails carries exactly
// the solo Evaluate error.
func TestEvaluateBatchErrors(t *testing.T) {
	results, stats := (&CVEvaluator{}).EvaluateBatch(nil, 0)
	if len(results) != 0 || stats.FusedTrials != 0 {
		t.Fatalf("empty batch: %v %+v", results, stats)
	}
	// 8 instances cannot support 5 folds (needs >= 10), so every request
	// must fail with the solo fold-construction error.
	train := tinyDataset(8, 3)
	base := nn.DefaultConfig()
	base.MaxIter = 5
	ev := NewCVEvaluator(train, base, VanillaComponents(5))
	space, _ := search.TableIIISpace(1)
	cfg := space.NewConfig([]int{0})
	reqs := []EvalRequest{
		{Cfg: cfg, Budget: 8, R: rng.New(1)},
		{Cfg: cfg, Budget: 8, R: rng.New(2)},
	}
	results, _ = ev.EvaluateBatch(reqs, 0)
	for i, req := range reqs {
		wantScores, wantErr := ev.Evaluate(req.Cfg, req.Budget, rng.New(uint64(1+i)))
		if wantScores != nil || wantErr == nil {
			t.Fatalf("expected solo fold error, got scores=%v err=%v", wantScores, wantErr)
		}
		if results[i].Err == nil || results[i].Err.Error() != wantErr.Error() {
			t.Fatalf("req %d: batch error %q != solo error %q", i, results[i].Err, wantErr)
		}
	}
}

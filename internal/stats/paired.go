package stats

import (
	"math"
	"sort"
)

// Paired significance tests used to judge whether the enhanced variants'
// wins across datasets (Table IV) are systematic rather than luck.

// SignTest performs a two-sided sign test on paired observations: ties are
// discarded and the p-value is the probability, under a fair coin, of a
// win count at least as extreme as observed. It returns the number of
// wins for a (a > b), for b, and the p-value. With no non-tied pairs the
// p-value is 1.
func SignTest(a, b []float64) (winsA, winsB int, pValue float64) {
	if len(a) != len(b) {
		panic("stats: SignTest length mismatch")
	}
	for i := range a {
		switch {
		case a[i] > b[i]:
			winsA++
		case (a)[i] < b[i]:
			winsB++
		}
	}
	n := winsA + winsB
	if n == 0 {
		return winsA, winsB, 1
	}
	k := winsA
	if winsB > winsA {
		k = winsB
	}
	// Two-sided: P[X >= k] + P[X <= n-k] for X ~ Binomial(n, 1/2).
	var tail float64
	for i := k; i <= n; i++ {
		tail += BinomialPMF(i, n, 0.5)
	}
	p := 2 * tail
	if k*2 == n {
		p = 1
	}
	if p > 1 {
		p = 1
	}
	return winsA, winsB, p
}

// WilcoxonSignedRank performs the two-sided Wilcoxon signed-rank test on
// paired observations using the normal approximation with tie correction.
// Zero differences are discarded. It returns the smaller rank sum W and
// the approximate p-value; with fewer than 5 usable pairs the exact
// distribution is so coarse that the function returns p = 1 (no evidence).
func WilcoxonSignedRank(a, b []float64) (w float64, pValue float64) {
	if len(a) != len(b) {
		panic("stats: WilcoxonSignedRank length mismatch")
	}
	type pair struct {
		abs float64
		pos bool
	}
	var pairs []pair
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		pairs = append(pairs, pair{abs: math.Abs(d), pos: d > 0})
	}
	n := len(pairs)
	if n < 5 {
		return 0, 1
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].abs < pairs[j].abs })
	// Average ranks for ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && pairs[j+1].abs == pairs[i].abs {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[k] = avg
		}
		i = j + 1
	}
	var wPlus, wMinus float64
	for i, p := range pairs {
		if p.pos {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w = wPlus
	if wMinus < wPlus {
		w = wMinus
	}
	nf := float64(n)
	mean := nf * (nf + 1) / 4
	variance := nf * (nf + 1) * (2*nf + 1) / 24
	if variance == 0 {
		return w, 1
	}
	z := (w - mean) / math.Sqrt(variance)
	// Two-sided normal tail.
	p := math.Erfc(math.Abs(z) / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return w, p
}

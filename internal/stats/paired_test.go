package stats

import (
	"testing"
)

func TestSignTestClearWinner(t *testing.T) {
	a := []float64{2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	winsA, winsB, p := SignTest(a, b)
	if winsA != 10 || winsB != 0 {
		t.Fatalf("wins %d/%d", winsA, winsB)
	}
	if p > 0.01 {
		t.Fatalf("10/10 wins p = %v, want < 0.01", p)
	}
}

func TestSignTestBalanced(t *testing.T) {
	a := []float64{1, 2, 1, 2}
	b := []float64{2, 1, 2, 1}
	winsA, winsB, p := SignTest(a, b)
	if winsA != 2 || winsB != 2 {
		t.Fatalf("wins %d/%d", winsA, winsB)
	}
	if p != 1 {
		t.Fatalf("balanced p = %v", p)
	}
}

func TestSignTestAllTies(t *testing.T) {
	a := []float64{1, 1, 1}
	_, _, p := SignTest(a, a)
	if p != 1 {
		t.Fatalf("all-ties p = %v", p)
	}
}

func TestSignTestPanicsOnMismatch(t *testing.T) {
	assertPanics(t, "length mismatch", func() { SignTest([]float64{1}, []float64{1, 2}) })
}

func TestWilcoxonClearWinner(t *testing.T) {
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = float64(i) + 1 + 0.5 // always bigger by varying margins
		b[i] = float64(i) * 0.9
	}
	w, p := WilcoxonSignedRank(a, b)
	if w != 0 {
		t.Fatalf("W = %v for a uniform winner", w)
	}
	if p > 0.001 {
		t.Fatalf("uniform winner p = %v", p)
	}
}

func TestWilcoxonNoEvidence(t *testing.T) {
	// Alternating small differences: no systematic direction.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{1.1, 1.9, 3.1, 3.9, 5.1, 4.9, 7.1, 7.9}
	_, p := WilcoxonSignedRank(a, b)
	if p < 0.2 {
		t.Fatalf("balanced differences p = %v, want large", p)
	}
}

func TestWilcoxonTooFewPairs(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{0, 1, 2}
	if _, p := WilcoxonSignedRank(a, b); p != 1 {
		t.Fatalf("tiny sample p = %v, want 1", p)
	}
	// Zero differences are discarded.
	if _, p := WilcoxonSignedRank(a, a); p != 1 {
		t.Fatalf("identical vectors p = %v", p)
	}
}

func TestWilcoxonHandlesTiedMagnitudes(t *testing.T) {
	a := []float64{2, 2, 2, 2, 2, 2}
	b := []float64{1, 1, 1, 1, 1, 1}
	w, p := WilcoxonSignedRank(a, b)
	if w != 0 {
		t.Fatalf("W = %v", w)
	}
	if p > 0.05 {
		t.Fatalf("six uniform wins p = %v", p)
	}
}

func TestWilcoxonPanicsOnMismatch(t *testing.T) {
	assertPanics(t, "length mismatch", func() { WilcoxonSignedRank([]float64{1}, []float64{1, 2}) })
}

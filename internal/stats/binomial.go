package stats

import "math"

// This file implements the distribution machinery behind Proposition 1
// (sampling stability). Random subset sampling from a balanced two-class
// dataset is Binomial(n, p); the paper's group-based sampling draws n/2
// instances from each of two groups with positive-class rates p−ε and p+ε,
// whose sum is the convolution of the two half-size binomials. Comparing the
// mass the two distributions put on the "representative" outcome x = n·p
// (and nearby outcomes) quantifies the stability gain.

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logPMF := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logPMF)
}

// BinomialCDF returns P[X <= k] for X ~ Binomial(n, p).
func BinomialCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var s float64
	for i := 0; i <= k; i++ {
		s += BinomialPMF(i, n, p)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// logChoose returns log(C(n, k)) using log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// TwoGroupPMF returns the PMF of the Proposition 1 group-sampling
// distribution: X = X1 + X2 with X1 ~ Binomial(n/2, p−ε) and
// X2 ~ Binomial(n/2, p+ε). n must be even; rates are clamped to [0,1].
func TwoGroupPMF(x, n int, p, eps float64) float64 {
	if n%2 != 0 {
		panic("stats: TwoGroupPMF requires even n")
	}
	half := n / 2
	p1 := clamp01(p - eps)
	p2 := clamp01(p + eps)
	var s float64
	lo := x - half
	if lo < 0 {
		lo = 0
	}
	hi := x
	if hi > half {
		hi = half
	}
	for i := lo; i <= hi; i++ {
		s += BinomialPMF(i, half, p1) * BinomialPMF(x-i, half, p2)
	}
	return s
}

// RepresentativeMass returns the probability that a size-n subset has a
// positive-instance count within ±tol of the ideal n·p, under random
// sampling (eps snapped to 0) or group sampling with the given eps.
// Larger mass means more stable (more representative) subsets.
func RepresentativeMass(n int, p, eps float64, tol int) float64 {
	target := int(math.Round(float64(n) * p))
	var s float64
	for x := target - tol; x <= target+tol; x++ {
		if x < 0 || x > n {
			continue
		}
		if eps == 0 {
			s += BinomialPMF(x, n, p)
		} else {
			s += TwoGroupPMF(x, n, p, eps)
		}
	}
	return s
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Package stats provides the descriptive statistics and distribution
// machinery used by the evaluation metric (mean/variance across folds), the
// experiment harness (repeated-seed summaries), and the Proposition 1
// sampling-stability analysis (binomial distributions and their two-group
// convolution).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
// The paper's score (Eq. 3) uses the spread of fold results, for which the
// population form is the natural choice (the folds are the whole population
// of evaluations performed).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the sample (n-1) standard deviation, used when
// summarizing repeated experiment runs.
func SampleStdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanStd returns Mean(xs) and SampleStdDev(xs) in one pass of the helpers.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), SampleStdDev(xs)
}

// Min returns the smallest value in xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates mean and variance online without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// SpearmanRank returns the Spearman rank correlation between two
// equal-length score vectors. It is used by tests to sanity-check that the
// enhanced metric preserves ranking power.
func SpearmanRank(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: SpearmanRank length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	return pearson(ra, rb)
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for pos := 0; pos < len(idx); {
		end := pos
		for end+1 < len(idx) && xs[idx[end+1]] == xs[idx[pos]] {
			end++
		}
		// average rank for ties
		avg := float64(pos+end) / 2
		for k := pos; k <= end; k++ {
			out[idx[k]] = avg
		}
		pos = end + 1
	}
	return out
}

func pearson(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

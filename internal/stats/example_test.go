package stats_test

import (
	"fmt"

	"enhancedbhpo/internal/stats"
)

// Proposition 1: with perfectly separated groups (ε = p) the two-group
// sample always reproduces the dataset's class balance, while random
// sampling only sometimes does.
func ExampleRepresentativeMass() {
	n, p := 40, 0.5
	random := stats.RepresentativeMass(n, p, 0, 0)  // ε = 0 → Binomial(n, p)
	grouped := stats.RepresentativeMass(n, p, p, 0) // ε = p → perfect groups
	fmt.Printf("P[exactly balanced]: random %.3f, grouped %.3f\n", random, grouped)
	// Output:
	// P[exactly balanced]: random 0.125, grouped 1.000
}

// Welford accumulates mean and variance in one pass without storing
// samples — used by the experiment harness for long runs.
func ExampleWelford() {
	var w stats.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	fmt.Printf("n=%d mean=%.1f std=%.1f\n", w.N(), w.Mean(), w.StdDev())
	// Output:
	// n=8 mean=5.0 std=2.0
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance singleton != 0")
	}
	if SampleStdDev([]float64{3}) != 0 {
		t.Error("SampleStdDev singleton != 0")
	}
}

func TestSampleStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0 / 7.0)
	if got := SampleStdDev(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("SampleStdDev = %v, want %v", got, want)
	}
	m, s := MeanStd(xs)
	if m != 5 || !almostEq(s, want, 1e-12) {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
}

func TestMinMaxQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("Min/Max wrong")
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	assertPanics(t, "empty min", func() { Min(nil) })
	assertPanics(t, "empty max", func() { Max(nil) })
	assertPanics(t, "empty quantile", func() { Quantile(nil, 0.5) })
	assertPanics(t, "quantile out of range", func() { Quantile(xs, 1.5) })
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(vals [16]float64) bool {
		var w Welford
		for _, v := range vals {
			// Bound extreme generated values for numeric sanity.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			w.Add(math.Mod(v, 1e6))
		}
		xs := make([]float64, len(vals))
		for i, v := range vals {
			xs[i] = math.Mod(v, 1e6)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almostEq(w.Mean(), Mean(xs), 1e-6*scale) &&
			almostEq(w.Variance(), Variance(xs), 1e-4*math.Max(1, Variance(xs))) &&
			w.N() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanRank(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if got := SpearmanRank(a, b); !almostEq(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	c := []float64{5, 4, 3, 2, 1}
	if got := SpearmanRank(a, c); !almostEq(got, -1, 1e-12) {
		t.Fatalf("perfect anti-correlation = %v", got)
	}
	d := []float64{1, 1, 1, 1, 1}
	if got := SpearmanRank(a, d); got != 0 {
		t.Fatalf("constant series correlation = %v", got)
	}
	assertPanics(t, "length mismatch", func() { SpearmanRank(a, []float64{1}) })
}

func TestSpearmanHandlesTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{10, 20, 20, 30}
	if got := SpearmanRank(a, b); !almostEq(got, 1, 1e-12) {
		t.Fatalf("tied perfect correlation = %v", got)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 20, 60} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			var sum float64
			for k := 0; k <= n; k++ {
				pmf := BinomialPMF(k, n, p)
				if pmf < 0 {
					t.Fatalf("negative PMF at k=%d n=%d p=%v", k, n, p)
				}
				sum += pmf
			}
			if !almostEq(sum, 1, 1e-9) {
				t.Fatalf("PMF sums to %v for n=%d p=%v", sum, n, p)
			}
		}
	}
}

func TestBinomialPMFKnown(t *testing.T) {
	// Binomial(4, 0.5): P[X=2] = 6/16.
	if got := BinomialPMF(2, 4, 0.5); !almostEq(got, 0.375, 1e-12) {
		t.Fatalf("PMF(2;4,0.5) = %v", got)
	}
	if BinomialPMF(-1, 4, 0.5) != 0 || BinomialPMF(5, 4, 0.5) != 0 {
		t.Fatal("out-of-support PMF not 0")
	}
	if BinomialPMF(0, 4, 0) != 1 || BinomialPMF(4, 4, 1) != 1 {
		t.Fatal("degenerate p handling wrong")
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	prev := 0.0
	for k := 0; k <= 30; k++ {
		c := BinomialCDF(k, 30, 0.37)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreased at k=%d", k)
		}
		prev = c
	}
	if got := BinomialCDF(30, 30, 0.37); !almostEq(got, 1, 1e-9) {
		t.Fatalf("CDF(n) = %v", got)
	}
	if BinomialCDF(-1, 30, 0.37) != 0 {
		t.Fatal("CDF(-1) != 0")
	}
}

func TestTwoGroupPMFEpsZeroMatchesBinomial(t *testing.T) {
	// With ε = 0 the two-group convolution is exactly Binomial(n, p).
	n, p := 20, 0.4
	for x := 0; x <= n; x++ {
		got := TwoGroupPMF(x, n, p, 0)
		want := BinomialPMF(x, n, p)
		if !almostEq(got, want, 1e-9) {
			t.Fatalf("x=%d: two-group %v vs binomial %v", x, got, want)
		}
	}
	assertPanics(t, "odd n", func() { TwoGroupPMF(1, 5, 0.5, 0.1) })
}

func TestTwoGroupPMFSumsToOne(t *testing.T) {
	n, p, eps := 24, 0.5, 0.3
	var sum float64
	for x := 0; x <= n; x++ {
		sum += TwoGroupPMF(x, n, p, eps)
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("two-group PMF sums to %v", sum)
	}
}

func TestRepresentativeMassIncreasesWithEps(t *testing.T) {
	// Proposition 1: group sampling (larger ε up to p) concentrates more
	// mass on representative subsets than random sampling (ε = 0).
	n, p := 40, 0.5
	random := RepresentativeMass(n, p, 0, 1)
	grouped := RepresentativeMass(n, p, p, 1) // ε = p: perfectly separated groups
	if grouped <= random {
		t.Fatalf("grouped mass %v not above random mass %v", grouped, random)
	}
	// ε = p puts all mass exactly on n·p.
	exact := TwoGroupPMF(n/2, n, p, p)
	if !almostEq(exact, 1, 1e-9) {
		t.Fatalf("ε=p mass at n·p = %v", exact)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

package mat

// SIMD row-range drivers: the same loop structure as the blocked kernels
// with the innermost sweeps replaced by the AVX2 microkernels from
// simd_amd64.s. Per-element accumulation order is identical, so these
// are bitwise-equal to the blocked and naive kernels; parity is pinned
// by the property tests. They are only dispatched to when simdAvailable
// (kernel dispatch normalizes SIMD→Blocked otherwise).

// simdAxpy adapts the asm microkernels to the tiled driver's slice-based
// kernel interface (see tiled.go).
var simdAxpy = axpyFuncs{
	axpy4: func(a0, a1, a2, a3 float64, b []float64, ldb int, dst []float64) {
		axpy4avx(a0, a1, a2, a3, &b[0], uintptr(ldb), &dst[0], uintptr(len(dst)))
	},
	axpy1: func(a0 float64, b []float64, dst []float64) {
		axpy1avx(a0, &b[0], &dst[0], uintptr(len(dst)))
	},
}

// mulSIMD computes rows [i0, i1) of dst = a*b.
func mulSIMD(dst, a, b *Dense, i0, i1 int) {
	kDim, n := a.cols, b.cols
	if n >= tileMinN && kDim >= tileMinK {
		mulTiled(dst, a, b, i0, i1, simdAxpy)
		return
	}
	bd := b.data
	for i := i0; i < i1; i++ {
		arow := a.data[i*kDim : (i+1)*kDim]
		drow := dst.data[i*n : i*n+n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kDim; k += 4 {
			axpy4avx(arow[k], arow[k+1], arow[k+2], arow[k+3],
				&bd[k*n], uintptr(n), &drow[0], uintptr(n))
		}
		for ; k < kDim; k++ {
			axpy1avx(arow[k], &bd[k*n], &drow[0], uintptr(n))
		}
	}
}

// mulTSIMD computes rows [i0, i1) of dst = a * bᵀ: four dot products per
// dot4avx call (one per lane), with the k tail beyond n&^3 finished here
// so each lane's chain continues in ascending-k order.
func mulTSIMD(dst, a, b *Dense, i0, i1 int) {
	kDim, n := a.cols, b.rows
	bd := b.data
	k4 := kDim &^ 3
	for i := i0; i < i1; i++ {
		arow := a.data[i*kDim : (i+1)*kDim : (i+1)*kDim]
		drow := dst.data[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			dot4avx(&arow[0], &bd[j*kDim], uintptr(kDim), uintptr(kDim), &drow[j])
			if k4 < kDim {
				b0 := bd[j*kDim : (j+1)*kDim : (j+1)*kDim]
				b1 := bd[(j+1)*kDim : (j+2)*kDim : (j+2)*kDim]
				b2 := bd[(j+2)*kDim : (j+3)*kDim : (j+3)*kDim]
				b3 := bd[(j+3)*kDim : (j+4)*kDim : (j+4)*kDim]
				s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
				for k := k4; k < kDim; k++ {
					av := arow[k]
					s0 += float64(av * b0[k])
					s1 += float64(av * b1[k])
					s2 += float64(av * b2[k])
					s3 += float64(av * b3[k])
				}
				drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			}
		}
		for ; j < n; j++ {
			brow := bd[j*kDim : (j+1)*kDim : (j+1)*kDim]
			var s float64
			for k, av := range arow {
				s += float64(av * brow[k])
			}
			drow[j] = s
		}
	}
}

// tMulSIMD computes rows [i0, i1) of dst = aᵀ * b (row i of dst is
// column i of a against all of b), with the same axpy microkernels as
// mulSIMD and the a values gathered down column i.
func tMulSIMD(dst, a, b *Dense, i0, i1 int) {
	kDim, p, n := a.rows, a.cols, b.cols
	if n >= tileMinN && kDim >= tileMinK {
		tMulTiled(dst, a, b, i0, i1, simdAxpy)
		return
	}
	ad, bd := a.data, b.data
	for i := i0; i < i1; i++ {
		drow := dst.data[i*n : i*n+n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kDim; k += 4 {
			axpy4avx(ad[k*p+i], ad[(k+1)*p+i], ad[(k+2)*p+i], ad[(k+3)*p+i],
				&bd[k*n], uintptr(n), &drow[0], uintptr(n))
		}
		for ; k < kDim; k++ {
			axpy1avx(ad[k*p+i], &bd[k*n], &drow[0], uintptr(n))
		}
	}
}

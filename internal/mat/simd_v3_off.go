//go:build amd64 && !amd64.v3

package mat

// compiledV3 is false on baseline GOAMD64 builds: AVX2 support must be
// probed at init via CPUID before the SIMD kernels may be selected.
const compiledV3 = false

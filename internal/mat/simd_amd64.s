// AVX2 microkernels for the SIMD matmul family. See simd_amd64.go for
// the contracts. Determinism rules observed throughout:
//
//   - separate VMULPD + VADDPD, never FMA: each product is rounded
//     before it is added, exactly like the scalar float64(a*b) form;
//   - per output element, additions happen in the same order as the
//     scalar kernels (a0..a3 per quad in the axpys, ascending k in the
//     dot lanes); vectorization only groups *independent* elements;
//   - VZEROUPPER before any scalar tail or return, so the SSE tail ops
//     pay no AVX transition penalty.

#include "textflag.h"

// func axpy4avx(a0, a1, a2, a3 float64, b *float64, ldb uintptr, dst *float64, n uintptr)
TEXT ·axpy4avx(SB), NOSPLIT, $0-64
	VBROADCASTSD a0+0(FP), Y0
	VBROADCASTSD a1+8(FP), Y1
	VBROADCASTSD a2+16(FP), Y2
	VBROADCASTSD a3+24(FP), Y3
	MOVQ b+32(FP), SI
	MOVQ ldb+40(FP), CX
	SHLQ $3, CX            // stride in bytes
	MOVQ dst+48(FP), DI
	MOVQ n+56(FP), DX
	LEAQ (SI)(CX*1), R8    // b1
	LEAQ (SI)(CX*2), R9    // b2
	LEAQ (R8)(CX*2), R10   // b3
	XORQ AX, AX
	MOVQ DX, BX
	ANDQ $-8, BX

axpy4_loop8:
	CMPQ AX, BX
	JGE  axpy4_quad
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (SI)(AX*8), Y6
	VMOVUPD 32(SI)(AX*8), Y7
	VMULPD  Y0, Y6, Y6
	VMULPD  Y0, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R8)(AX*8), Y6
	VMOVUPD 32(R8)(AX*8), Y7
	VMULPD  Y1, Y6, Y6
	VMULPD  Y1, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R9)(AX*8), Y6
	VMOVUPD 32(R9)(AX*8), Y7
	VMULPD  Y2, Y6, Y6
	VMULPD  Y2, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R10)(AX*8), Y6
	VMOVUPD 32(R10)(AX*8), Y7
	VMULPD  Y3, Y6, Y6
	VMULPD  Y3, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  axpy4_loop8

axpy4_quad:
	MOVQ DX, BX
	ANDQ $-4, BX

axpy4_loop4:
	CMPQ AX, BX
	JGE  axpy4_tail
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y6
	VMULPD  Y0, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R8)(AX*8), Y6
	VMULPD  Y1, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R9)(AX*8), Y6
	VMULPD  Y2, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD (R10)(AX*8), Y6
	VMULPD  Y3, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy4_loop4

axpy4_tail:
	VZEROUPPER

axpy4_tailloop:
	CMPQ AX, DX
	JGE  axpy4_done
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X6
	MULSD X0, X6
	ADDSD X6, X4
	MOVSD (R8)(AX*8), X6
	MULSD X1, X6
	ADDSD X6, X4
	MOVSD (R9)(AX*8), X6
	MULSD X2, X6
	ADDSD X6, X4
	MOVSD (R10)(AX*8), X6
	MULSD X3, X6
	ADDSD X6, X4
	MOVSD X4, (DI)(AX*8)
	INCQ AX
	JMP  axpy4_tailloop

axpy4_done:
	RET

// func axpy1avx(a0 float64, b *float64, dst *float64, n uintptr)
TEXT ·axpy1avx(SB), NOSPLIT, $0-32
	VBROADCASTSD a0+0(FP), Y0
	MOVQ b+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVQ n+24(FP), DX
	XORQ AX, AX
	MOVQ DX, BX
	ANDQ $-8, BX

axpy1_loop8:
	CMPQ AX, BX
	JGE  axpy1_quad
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (SI)(AX*8), Y6
	VMOVUPD 32(SI)(AX*8), Y7
	VMULPD  Y0, Y6, Y6
	VMULPD  Y0, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  axpy1_loop8

axpy1_quad:
	MOVQ DX, BX
	ANDQ $-4, BX

axpy1_loop4:
	CMPQ AX, BX
	JGE  axpy1_tail
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y6
	VMULPD  Y0, Y6, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy1_loop4

axpy1_tail:
	VZEROUPPER

axpy1_tailloop:
	CMPQ AX, DX
	JGE  axpy1_done
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X6
	MULSD X0, X6
	ADDSD X6, X4
	MOVSD X4, (DI)(AX*8)
	INCQ AX
	JMP  axpy1_tailloop

axpy1_done:
	RET

// func dot4avx(a *float64, b *float64, ldb, n uintptr, out *float64)
//
// Four independent dot products in the four lanes of Y0: each k-step
// loads b0..b3[k..k+3], transposes the 4x4 block into per-k column
// vectors, and adds a[k]*col(k) one k at a time — so every lane is a
// single sequential ascending-k accumulation chain, exactly like the
// scalar 4-chain loop in mulTBlocked. Only n&^3 steps are processed;
// the caller finishes the k tail.
TEXT ·dot4avx(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), R8
	MOVQ ldb+16(FP), CX
	SHLQ $3, CX
	MOVQ n+24(FP), DX
	LEAQ (R8)(CX*1), R9
	LEAQ (R8)(CX*2), R10
	LEAQ (R9)(CX*2), R11
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
	MOVQ DX, BX
	ANDQ $-4, BX

dot4_loop:
	CMPQ AX, BX
	JGE  dot4_done
	VMOVUPD (R8)(AX*8), Y1   // b0[k..k+3]
	VMOVUPD (R9)(AX*8), Y2   // b1[k..k+3]
	VMOVUPD (R10)(AX*8), Y3  // b2[k..k+3]
	VMOVUPD (R11)(AX*8), Y4  // b3[k..k+3]
	VUNPCKLPD Y2, Y1, Y5     // b0[k] b1[k] b0[k+2] b1[k+2]
	VUNPCKHPD Y2, Y1, Y6     // b0[k+1] b1[k+1] b0[k+3] b1[k+3]
	VUNPCKLPD Y4, Y3, Y7     // b2[k] b3[k] b2[k+2] b3[k+2]
	VUNPCKHPD Y4, Y3, Y8     // b2[k+1] b3[k+1] b2[k+3] b3[k+3]
	VPERM2F128 $0x20, Y7, Y5, Y9   // col k
	VPERM2F128 $0x20, Y8, Y6, Y10  // col k+1
	VPERM2F128 $0x31, Y7, Y5, Y11  // col k+2
	VPERM2F128 $0x31, Y8, Y6, Y12  // col k+3
	VBROADCASTSD (SI)(AX*8), Y13
	VMULPD Y9, Y13, Y13
	VADDPD Y13, Y0, Y0
	VBROADCASTSD 8(SI)(AX*8), Y13
	VMULPD Y10, Y13, Y13
	VADDPD Y13, Y0, Y0
	VBROADCASTSD 16(SI)(AX*8), Y13
	VMULPD Y11, Y13, Y13
	VADDPD Y13, Y0, Y0
	VBROADCASTSD 24(SI)(AX*8), Y13
	VMULPD Y12, Y13, Y13
	VADDPD Y13, Y0, Y0
	ADDQ $4, AX
	JMP  dot4_loop

dot4_done:
	MOVQ out+32(FP), DI
	VMOVUPD Y0, (DI)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

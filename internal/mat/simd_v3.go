//go:build amd64.v3

package mat

// compiledV3 is true when the package is built with GOAMD64=v3 (or
// higher): the toolchain then assumes AVX2 everywhere, so the runtime
// CPUID probe is redundant and the SIMD kernels are always usable.
const compiledV3 = true

//go:build amd64

package mat

// AVX2 microkernel declarations (bodies in simd_amd64.s) plus the CPUID
// probing that decides whether the SIMD kernel family is usable at all.
//
// The microkernels are deliberately *not* full matmuls: they are the two
// inner-loop shapes the blocked kernels already use — a 4-row axpy sweep
// (mulBlocked/tMulBlocked) and a 4-wide dot-product block (mulTBlocked) —
// lifted to AVX2 with the exact same per-element accumulation order.
// Vectorizing across output columns (axpy) or across independent dot
// chains (dot4) only changes *which* elements are computed together,
// never the order of additions within one element, and VMULPD/VADDPD
// round each lane exactly like the scalar ops, so the SIMD family is
// bitwise-identical to the blocked and naive kernels. FMA instructions
// are never emitted: a fused multiply-add rounds once where the
// reference kernels round twice, which would break that guarantee.

// axpy4avx computes dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
// for j in [0, n), where b0 starts at b and b1..b3 follow at stride ldb
// elements. The four adds per element are applied in a0..a3 order,
// matching the scalar 4-wide unrolled loop.
//
//go:noescape
func axpy4avx(a0, a1, a2, a3 float64, b *float64, ldb uintptr, dst *float64, n uintptr)

// axpy1avx computes dst[j] += a0*b[j] for j in [0, n).
//
//go:noescape
func axpy1avx(a0 float64, b *float64, dst *float64, n uintptr)

// dot4avx sets out[m] = Σ_{k<n&^3} a[k]*b_m[k] for the four rows b_m at
// stride ldb elements from b, accumulating in ascending-k order per
// output (one sequential chain per lane; lanes are independent dots).
// The k tail beyond n&^3 is left to the caller so the remaining adds
// continue each chain in order.
//
//go:noescape
func dot4avx(a *float64, b *float64, ldb, n uintptr, out *float64)

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (OS-enabled SIMD state).
func xgetbv0() (eax, edx uint32)

// detectAVX2 reports whether both the CPU and the OS support AVX2 with
// full YMM state. Under GOAMD64=v3 the toolchain already assumes AVX2,
// so the probe is skipped.
func detectAVX2() bool {
	if compiledV3 {
		return true
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
	if xlo, _ := xgetbv0(); xlo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

var simdAvailable = detectAVX2()

// cpuFeatures names the instruction-set extensions relevant to kernel
// selection, for the service's /metrics and /healthz introspection.
func cpuFeatures() string {
	maxID, _, _, _ := cpuid(0, 0)
	_, _, c1, _ := cpuid(1, 0)
	feats := "sse2"
	if c1&(1<<19) != 0 {
		feats += ",sse4.1"
	}
	if c1&(1<<20) != 0 {
		feats += ",sse4.2"
	}
	if c1&(1<<28) != 0 {
		feats += ",avx"
	}
	if c1&(1<<12) != 0 {
		feats += ",fma"
	}
	if maxID >= 7 {
		_, b7, _, _ := cpuid(7, 0)
		if b7&(1<<5) != 0 {
			feats += ",avx2"
		}
		if b7&(1<<16) != 0 {
			feats += ",avx512f"
		}
	}
	return feats
}

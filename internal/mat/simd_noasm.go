//go:build !amd64

package mat

// Non-amd64 stubs. simdAvailable is false, so kernel dispatch normalizes
// any SIMD request to the portable blocked family and the microkernel
// stubs below are unreachable; they exist only to keep the package
// compiling on every platform.

const compiledV3 = false

var simdAvailable = false

func axpy4avx(a0, a1, a2, a3 float64, b *float64, ldb uintptr, dst *float64, n uintptr) {
	panic("mat: SIMD kernel called on a platform without SIMD support")
}

func axpy1avx(a0 float64, b *float64, dst *float64, n uintptr) {
	panic("mat: SIMD kernel called on a platform without SIMD support")
}

func dot4avx(a *float64, b *float64, ldb, n uintptr, out *float64) {
	panic("mat: SIMD kernel called on a platform without SIMD support")
}

func cpuFeatures() string { return "" }

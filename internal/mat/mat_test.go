package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewDenseAndAccessors(t *testing.T) {
	m := NewDense(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("dims = %d,%d", r, c)
	}
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At = %v", got)
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row is not a view")
	}
}

func TestNewDensePanics(t *testing.T) {
	assertPanics(t, "zero rows", func() { NewDense(0, 3) })
	assertPanics(t, "neg cols", func() { NewDense(2, -1) })
	assertPanics(t, "bad data len", func() { NewDenseData(2, 2, []float64{1, 2, 3}) })
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := NewDense(2, 2)
	Mul(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(dst.Data()[i], w) {
			t.Fatalf("Mul[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 2)
	dst := NewDense(2, 2)
	assertPanics(t, "inner mismatch", func() { Mul(dst, a, b) })
	c := NewDense(3, 2)
	bad := NewDense(3, 3)
	assertPanics(t, "dst mismatch", func() { Mul(bad, a, c) })
	sq := NewDense(2, 2)
	sqB := NewDense(2, 2)
	assertPanics(t, "aliased dst", func() { Mul(sq, sq, sqB) })
}

func TestMulTMatchesMulWithTranspose(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, -1, 2, 0, 3, 1})
	b := NewDenseData(4, 3, []float64{2, 1, 0, 1, 1, 1, -1, 0, 2, 3, 2, 1})
	got := NewDense(2, 4)
	MulT(got, a, b)
	want := NewDense(2, 4)
	Mul(want, a, b.T())
	for i := range got.Data() {
		if !almostEq(got.Data()[i], want.Data()[i]) {
			t.Fatalf("MulT[%d] = %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestTMulMatchesTransposeMul(t *testing.T) {
	a := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 4, []float64{1, 0, 1, 0, 2, 1, 0, 1, 1, 1, 1, 1})
	got := NewDense(2, 4)
	TMul(got, a, b)
	want := NewDense(2, 4)
	Mul(want, a.T(), b)
	for i := range got.Data() {
		if !almostEq(got.Data()[i], want.Data()[i]) {
			t.Fatalf("TMul[%d] = %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(vals [12]float64) bool {
		m := NewDenseData(3, 4, vals[:])
		tt := m.T().T()
		for i := range m.Data() {
			if m.Data()[i] != tt.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	a.Add(b)
	if a.At(0, 0) != 6 || a.At(1, 1) != 12 {
		t.Fatalf("Add wrong: %v", a.Data())
	}
	a.Sub(b)
	if a.At(0, 0) != 1 || a.At(1, 1) != 4 {
		t.Fatalf("Sub wrong: %v", a.Data())
	}
	a.Scale(2)
	if a.At(0, 1) != 4 {
		t.Fatalf("Scale wrong: %v", a.Data())
	}
	a.Zero()
	if a.FrobNorm() != 0 {
		t.Fatal("Zero left nonzero entries")
	}
	a.Fill(3)
	if a.At(1, 0) != 3 {
		t.Fatal("Fill failed")
	}
}

func TestMulElemApply(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 2, 3})
	b := NewDenseData(1, 3, []float64{2, 2, 2})
	a.MulElem(b)
	if a.At(0, 2) != 6 {
		t.Fatalf("MulElem wrong: %v", a.Data())
	}
	a.Apply(func(v float64) float64 { return -v })
	if a.At(0, 0) != -2 {
		t.Fatalf("Apply wrong: %v", a.Data())
	}
}

func TestDotAxpyNorms(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[2] != 7 {
		t.Fatalf("Axpy wrong: %v", y)
	}
	if !almostEq(Norm2([]float64{3, 4}), 5) {
		t.Fatal("Norm2 wrong")
	}
	if got := SqDist(a, b); got != 27 {
		t.Fatalf("SqDist = %v", got)
	}
	assertPanics(t, "dot mismatch", func() { Dot(a, []float64{1}) })
	assertPanics(t, "axpy mismatch", func() { Axpy(1, a, []float64{1}) })
	assertPanics(t, "sqdist mismatch", func() { SqDist(a, []float64{1}) })
}

func TestSqDistNonNegativeAndSymmetric(t *testing.T) {
	f := func(a, b [5]float64) bool {
		av := make([]float64, 5)
		bv := make([]float64, 5)
		for i := range av {
			// Bound inputs so squared differences cannot overflow.
			av[i] = math.Mod(a[i], 1e6)
			bv[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(av[i]) || math.IsNaN(bv[i]) {
				return true
			}
		}
		d1 := SqDist(av, bv)
		d2 := SqDist(bv, av)
		return d1 >= 0 && almostEq(d1, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddRowVectorColSums(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	AddRowVector(m, []float64{10, 20, 30})
	if m.At(1, 2) != 36 {
		t.Fatalf("AddRowVector wrong: %v", m.Data())
	}
	sums := ColSums(m)
	if sums[0] != 11+14 || sums[2] != 33+36 {
		t.Fatalf("ColSums wrong: %v", sums)
	}
	assertPanics(t, "row vector mismatch", func() { AddRowVector(m, []float64{1}) })
}

func TestMaxAbs(t *testing.T) {
	m := NewDenseData(1, 3, []float64{-5, 2, 3})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestAddScaledShapePanic(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 3)
	assertPanics(t, "shape mismatch", func() { a.Add(b) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// Package mat provides small dense linear-algebra kernels used by the
// neural-network and clustering substrates. All storage is row-major
// float64. The package is deliberately minimal: it implements exactly the
// operations the rest of the repository needs, with bounds-checked
// constructors and panic-free arithmetic on matching shapes.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows×cols zero matrix.
// It panics if rows or cols is not positive.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (length rows*cols, row-major) without copying.
// It panics on a length mismatch.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i. Mutating the returned slice mutates the matrix.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing slice (row-major).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled adds s*other to m in place. Shapes must match.
func (m *Dense) AddScaled(other *Dense, s float64) {
	mustSameShape(m, other)
	for i, v := range other.data {
		m.data[i] += s * v
	}
}

// Add adds other to m in place. Shapes must match.
func (m *Dense) Add(other *Dense) { m.AddScaled(other, 1) }

// Sub subtracts other from m in place. Shapes must match.
func (m *Dense) Sub(other *Dense) { m.AddScaled(other, -1) }

// MulElem multiplies m element-wise by other in place. Shapes must match.
func (m *Dense) MulElem(other *Dense) {
	mustSameShape(m, other)
	for i, v := range other.data {
		m.data[i] *= v
	}
}

// Apply replaces each element x with f(x).
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

func mustSameShape(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
}

// checkMul validates the operand shapes of dst = a*b.
func checkMul(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: mul inner mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: mul dst shape %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	if dst == a || dst == b {
		panic("mat: mul destination aliases an operand")
	}
}

// checkMulT validates the operand shapes of dst = a * bᵀ.
func checkMulT(dst, a, b *Dense) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: mulT inner mismatch %dx%d * (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("mat: mulT dst shape %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.rows))
	}
	if dst == a || dst == b {
		panic("mat: mulT destination aliases an operand")
	}
}

// checkTMul validates the operand shapes of dst = aᵀ * b.
func checkTMul(dst, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: tmul inner mismatch (%dx%d)ᵀ * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: tmul dst shape %dx%d, want %dx%d", dst.rows, dst.cols, a.cols, b.cols))
	}
	if dst == a || dst == b {
		panic("mat: tmul destination aliases an operand")
	}
}

// Dot returns the inner product of equal-length vectors a and b. The
// float64 conversion forces per-step rounding so implementations that
// fuse multiply-add cannot change the result across platforms.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += float64(v * b[i])
	}
	return s
}

// Axpy computes y += alpha*x for equal-length vectors.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between equal-length vectors.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: sqdist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Scale multiplies every element of v by s in place.
func Scale(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddRowVector adds vector v to every row of m in place.
func AddRowVector(m *Dense, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: row vector length %d != cols %d", len(v), m.cols))
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, x := range v {
			row[j] += x
		}
	}
}

// ColSums returns the per-column sums of m.
func ColSums(m *Dense) []float64 {
	out := make([]float64, m.cols)
	ColSumsInto(out, m)
	return out
}

// ColSumsInto writes the per-column sums of m into out, which must have
// length m.cols. It is the allocation-free form of ColSums used by the
// training loop's scratch path.
func ColSumsInto(out []float64, m *Dense) {
	if len(out) != m.cols {
		panic(fmt.Sprintf("mat: col sums dst length %d != cols %d", len(out), m.cols))
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
}

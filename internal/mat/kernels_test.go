package mat

import (
	"fmt"
	"os"
	"testing"

	"enhancedbhpo/internal/rng"
)

// kernelShapes covers the degenerate, prime, tall, wide and MLP-typical
// cases: (m, k, n) for dst(m×n) = a(m×k) * b(k×n). The odd sizes land in
// every unroll remainder path (k%4, n%4) and the large ones cross the
// parallel threshold.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 5, 1},
	{2, 3, 4},
	{7, 13, 31},
	{5, 4, 257},
	{257, 3, 5},
	{3, 257, 5},
	{32, 50, 50},
	{64, 33, 17},
	{97, 101, 103},
	{128, 100, 100},
}

func randDense(r *rng.RNG, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	d := m.Data()
	for i := range d {
		// Mix magnitudes and exact zeros so the naive kernels' av == 0
		// skip path is exercised against the branch-free blocked path.
		switch r.Uint64() % 8 {
		case 0:
			d[i] = 0
		case 1:
			d[i] = r.Norm() * 1e6
		default:
			d[i] = r.Norm()
		}
	}
	return m
}

func bitwiseEqual(t *testing.T, label string, got, want *Dense) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: element %d = %x, want %x (not bitwise identical)",
				label, i, gd[i], wd[i])
		}
	}
}

// TestBlockedKernelsMatchNaiveBitwise pins the core tuned-kernel
// contract: for every shape and worker count (1, 2, 8), the blocked and
// parallel kernels produce results bit-for-bit identical to the retained
// naive references on finite inputs.
func TestBlockedKernelsMatchNaiveBitwise(t *testing.T) {
	workerCounts := []int{1, 2, 8}
	for si, sh := range kernelShapes {
		r := rng.New(uint64(1000 + si))
		t.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(t *testing.T) {
			// Mul: a(m×k) * b(k×n).
			a := randDense(r, sh.m, sh.k)
			b := randDense(r, sh.k, sh.n)
			want := NewDense(sh.m, sh.n)
			NaiveMul(want, a, b)
			for _, w := range workerCounts {
				got := NewDense(sh.m, sh.n)
				got.Fill(42) // stale contents must not leak through
				MulWorkers(got, a, b, w)
				bitwiseEqual(t, fmt.Sprintf("Mul workers=%d", w), got, want)
			}

			// MulT: a(m×k) * b(n×k)ᵀ.
			bt := randDense(r, sh.n, sh.k)
			wantT := NewDense(sh.m, sh.n)
			NaiveMulT(wantT, a, bt)
			for _, w := range workerCounts {
				got := NewDense(sh.m, sh.n)
				got.Fill(42)
				MulTWorkers(got, a, bt, w)
				bitwiseEqual(t, fmt.Sprintf("MulT workers=%d", w), got, wantT)
			}

			// TMul: a(k×m)ᵀ * b(k×n).
			at := randDense(r, sh.k, sh.m)
			b2 := randDense(r, sh.k, sh.n)
			wantG := NewDense(sh.m, sh.n)
			NaiveTMul(wantG, at, b2)
			for _, w := range workerCounts {
				got := NewDense(sh.m, sh.n)
				got.Fill(42)
				TMulWorkers(got, at, b2, w)
				bitwiseEqual(t, fmt.Sprintf("TMul workers=%d", w), got, wantG)
			}
		})
	}
}

// TestParallelWorkerCountDeterminism forces the parallel path (a shape
// well past the flop threshold) and pins bitwise-identical output for
// every worker count, including ones that do not divide the row count.
func TestParallelWorkerCountDeterminism(t *testing.T) {
	r := rng.New(77)
	const m, k, n = 131, 64, 64 // 131*64*64 ≈ 537k flops > parallelMinFlops
	a := randDense(r, m, k)
	b := randDense(r, k, n)
	base := NewDense(m, n)
	MulWorkers(base, a, b, 1)
	for _, w := range []int{2, 3, 5, 8, 64, 500} {
		got := NewDense(m, n)
		MulWorkers(got, a, b, w)
		bitwiseEqual(t, fmt.Sprintf("workers=%d", w), got, base)
	}
	// Default dispatch (workers=0 → GOMAXPROCS) must agree too.
	got := NewDense(m, n)
	Mul(got, a, b)
	bitwiseEqual(t, "workers=default", got, base)
}

// TestSetKernelDispatch pins that the benchmark escape hatch really
// routes the public entry points to the naive kernels and restores.
func TestSetKernelDispatch(t *testing.T) {
	wantDefault := Blocked
	if SIMDAvailable() {
		wantDefault = SIMD
	}
	// The forced-fallback CI run (`make fallback`) overrides the default
	// family via BHPO_KERNEL; the pinned expectation follows it.
	if name := os.Getenv("BHPO_KERNEL"); name != "" {
		if parsed, err := ParseKernel(name); err == nil {
			wantDefault = normalizeKernel(parsed)
		}
	}
	prev := SetKernel(NaiveKernel)
	if prev != wantDefault {
		t.Fatalf("default kernel = %v, want %v", prev, wantDefault)
	}
	defer SetKernel(prev)
	r := rng.New(5)
	a := randDense(r, 6, 7)
	b := randDense(r, 7, 8)
	got := NewDense(6, 8)
	Mul(got, a, b)
	want := NewDense(6, 8)
	NaiveMul(want, a, b)
	bitwiseEqual(t, "naive dispatch", got, want)
	if back := SetKernel(Blocked); back != NaiveKernel {
		t.Fatalf("SetKernel returned %d, want NaiveKernel", back)
	}
}

// TestBlockedKernelsTiledShapes extends the bitwise parity pin to shapes
// that cross the cache-blocking threshold (b.cols ≥ tileMinN with
// a-depth ≥ tileMinK), including odd sizes that land in every panel
// remainder path. Runs under whatever kernel family is active (the
// forced-fallback CI run repeats it with BHPO_KERNEL=blocked).
func TestBlockedKernelsTiledShapes(t *testing.T) {
	tiledShapes := []struct{ m, k, n int }{
		{1, tileMinK, tileMinN}, // exact threshold boundary
		{4, 64, 512},            // aligned panels
		{9, 67, 515},            // odd everything: k%4, panel tails
		{65, 129, 600},          // parallel path + partial panels
		{3, 300, 1024},          // deep k, two full j-panel rows
	}
	for si, sh := range tiledShapes {
		r := rng.New(uint64(4000 + si))
		t.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(t *testing.T) {
			a := randDense(r, sh.m, sh.k)
			b := randDense(r, sh.k, sh.n)
			want := NewDense(sh.m, sh.n)
			NaiveMul(want, a, b)
			for _, w := range []int{1, 3, 8} {
				got := NewDense(sh.m, sh.n)
				got.Fill(42)
				MulWorkers(got, a, b, w)
				bitwiseEqual(t, fmt.Sprintf("Mul workers=%d", w), got, want)
			}

			at := randDense(r, sh.k, sh.m)
			wantG := NewDense(sh.m, sh.n)
			NaiveTMul(wantG, at, b)
			for _, w := range []int{1, 3, 8} {
				got := NewDense(sh.m, sh.n)
				got.Fill(42)
				TMulWorkers(got, at, b, w)
				bitwiseEqual(t, fmt.Sprintf("TMul workers=%d", w), got, wantG)
			}
		})
	}
}

// TestColSumsInto pins the allocation-free column-sum path against the
// allocating one.
func TestColSumsInto(t *testing.T) {
	r := rng.New(9)
	m := randDense(r, 11, 7)
	want := ColSums(m)
	got := make([]float64, 7)
	for i := range got {
		got[i] = -1 // must be overwritten, not accumulated into
	}
	ColSumsInto(got, m)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("col %d: %v != %v", j, got[j], want[j])
		}
	}
	assertPanics(t, "length mismatch", func() { ColSumsInto(make([]float64, 3), m) })
}

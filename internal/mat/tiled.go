package mat

// Cache-blocked (panel-tiled) matmul drivers for wide operands. The
// register-blocked kernels stream all of B once per destination row; at
// MLP-typical widths (≤ 256) B lives in L1/L2 and that is optimal, but
// for wide layers (b.cols ≥ tileMinN) the re-streamed B panel spills the
// caches and every row pays DRAM latency. The tiled drivers iterate
// j-panels × k-panels × rows so one tileK×tileN block of B (32 KiB,
// sized to L1d) is reused across every row before moving on.
//
// Tiling is bitwise-safe by construction: panel boundaries only change
// *when* an output element's k-range contributions are applied, never
// their order — ascending j-panels then ascending k-panels means each
// dst element still accumulates its products in ascending-k order, and
// the innermost sweeps are the very same axpy kernels (scalar or SIMD)
// the untiled paths use. The parity property tests pin this.

const (
	// tileMinN is the b.cols threshold at which Mul/TMul switch to the
	// panel-tiled path. Below it the whole B panel fits comfortably in
	// L2 and the untiled streaming kernels win.
	tileMinN = 512
	// tileMinK is the minimum a-depth for tiling; shallow multiplies
	// re-stream so little of B that tiling is pure overhead.
	tileMinK = 64
	// tileN × tileK is the B panel kept hot across rows:
	// 64×64 doubles = 32 KiB, sized to fit L1d alongside the dst tile.
	tileN = 64
	tileK = 64
)

// axpyFuncs is the microkernel pair the tiled drivers are parameterized
// over: the scalar pair keeps the portable blocked family self-contained
// and the SIMD pair routes to the AVX2 asm. Both implement the identical
// element-order contract (see axpy4avx).
type axpyFuncs struct {
	// axpy4: dst[j] += a0*b[j] + a1*b[ldb+j] + a2*b[2*ldb+j] + a3*b[3*ldb+j],
	// adds applied in a0..a3 order per element.
	axpy4 func(a0, a1, a2, a3 float64, b []float64, ldb int, dst []float64)
	// axpy1: dst[j] += a0*b[j].
	axpy1 func(a0 float64, b []float64, dst []float64)
}

var scalarAxpy = axpyFuncs{axpy4: axpy4go, axpy1: axpy1go}

func axpy4go(a0, a1, a2, a3 float64, b []float64, ldb int, dst []float64) {
	b0 := b[:len(dst)]
	b1 := b[ldb : ldb+len(dst)]
	b2 := b[2*ldb : 2*ldb+len(dst)]
	b3 := b[3*ldb : 3*ldb+len(dst)]
	for j := range dst {
		d := dst[j]
		d += float64(a0 * b0[j])
		d += float64(a1 * b1[j])
		d += float64(a2 * b2[j])
		d += float64(a3 * b3[j])
		dst[j] = d
	}
}

func axpy1go(a0 float64, b []float64, dst []float64) {
	b0 := b[:len(dst)]
	for j := range dst {
		dst[j] += float64(a0 * b0[j])
	}
}

// mulTiled computes rows [i0, i1) of dst = a*b in (j, k) panels.
func mulTiled(dst, a, b *Dense, i0, i1 int, kf axpyFuncs) {
	kDim, n := a.cols, b.cols
	bd := b.data
	for j0 := 0; j0 < n; j0 += tileN {
		j1 := j0 + tileN
		if j1 > n {
			j1 = n
		}
		for k0 := 0; k0 < kDim; k0 += tileK {
			k1 := k0 + tileK
			if k1 > kDim {
				k1 = kDim
			}
			for i := i0; i < i1; i++ {
				arow := a.data[i*kDim : (i+1)*kDim]
				drow := dst.data[i*n+j0 : i*n+j1]
				if k0 == 0 {
					for j := range drow {
						drow[j] = 0
					}
				}
				k := k0
				for ; k+4 <= k1; k += 4 {
					kf.axpy4(arow[k], arow[k+1], arow[k+2], arow[k+3], bd[k*n+j0:], n, drow)
				}
				for ; k < k1; k++ {
					kf.axpy1(arow[k], bd[k*n+j0:], drow)
				}
			}
		}
	}
}

// tMulTiled computes rows [i0, i1) of dst = aᵀ * b in (j, k) panels; row
// i of dst is column i of a, so the a values are gathered at stride
// a.cols.
func tMulTiled(dst, a, b *Dense, i0, i1 int, kf axpyFuncs) {
	kDim, p, n := a.rows, a.cols, b.cols
	ad, bd := a.data, b.data
	for j0 := 0; j0 < n; j0 += tileN {
		j1 := j0 + tileN
		if j1 > n {
			j1 = n
		}
		for k0 := 0; k0 < kDim; k0 += tileK {
			k1 := k0 + tileK
			if k1 > kDim {
				k1 = kDim
			}
			for i := i0; i < i1; i++ {
				drow := dst.data[i*n+j0 : i*n+j1]
				if k0 == 0 {
					for j := range drow {
						drow[j] = 0
					}
				}
				k := k0
				for ; k+4 <= k1; k += 4 {
					kf.axpy4(ad[k*p+i], ad[(k+1)*p+i], ad[(k+2)*p+i], ad[(k+3)*p+i], bd[k*n+j0:], n, drow)
				}
				for ; k < k1; k++ {
					kf.axpy1(ad[k*p+i], bd[k*n+j0:], drow)
				}
			}
		}
	}
}

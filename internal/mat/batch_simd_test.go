package mat

import (
	"fmt"
	"testing"

	"enhancedbhpo/internal/rng"
)

// forcedKinds lists the kernel families to sweep explicitly via
// SetKernel, independent of what init selected. SIMD is included
// unconditionally: without CPU support SetKernel normalizes it to
// Blocked, which must also be parity-clean.
var forcedKinds = []KernelKind{Blocked, SIMD}

// TestForcedKernelParity sweeps every kernel family over the full shape
// table and worker counts, pinning bitwise agreement with the naive
// references. This is the forced-kernel-mode counterpart of
// TestBlockedKernelsMatchNaiveBitwise (which runs under the
// init-selected family).
func TestForcedKernelParity(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	for _, kind := range forcedKinds {
		SetKernel(kind)
		t.Run(kind.String(), func(t *testing.T) {
			for si, sh := range kernelShapes {
				r := rng.New(uint64(7000 + si))
				a := randDense(r, sh.m, sh.k)
				b := randDense(r, sh.k, sh.n)
				want := NewDense(sh.m, sh.n)
				NaiveMul(want, a, b)
				for _, w := range []int{1, 4} {
					got := NewDense(sh.m, sh.n)
					got.Fill(42)
					MulWorkers(got, a, b, w)
					bitwiseEqual(t, fmt.Sprintf("%v Mul %dx%dx%d workers=%d", kind, sh.m, sh.k, sh.n, w), got, want)
				}

				bt := randDense(r, sh.n, sh.k)
				wantT := NewDense(sh.m, sh.n)
				NaiveMulT(wantT, a, bt)
				for _, w := range []int{1, 4} {
					got := NewDense(sh.m, sh.n)
					got.Fill(42)
					MulTWorkers(got, a, bt, w)
					bitwiseEqual(t, fmt.Sprintf("%v MulT %dx%dx%d workers=%d", kind, sh.m, sh.k, sh.n, w), got, wantT)
				}

				at := randDense(r, sh.k, sh.m)
				b2 := randDense(r, sh.k, sh.n)
				wantG := NewDense(sh.m, sh.n)
				NaiveTMul(wantG, at, b2)
				for _, w := range []int{1, 4} {
					got := NewDense(sh.m, sh.n)
					got.Fill(42)
					TMulWorkers(got, at, b2, w)
					bitwiseEqual(t, fmt.Sprintf("%v TMul %dx%dx%d workers=%d", kind, sh.m, sh.k, sh.n, w), got, wantG)
				}
			}
		})
	}
}

// TestSIMDNormalization pins that requesting SIMD always lands on a
// runnable family and that ActiveKernel reports what actually runs.
func TestSIMDNormalization(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	SetKernel(SIMD)
	got := ActiveKernel()
	if SIMDAvailable() {
		if got != SIMD {
			t.Fatalf("ActiveKernel = %v after SetKernel(SIMD) with support, want SIMD", got)
		}
	} else if got != Blocked {
		t.Fatalf("ActiveKernel = %v after SetKernel(SIMD) without support, want Blocked", got)
	}
}

func TestParseKernel(t *testing.T) {
	for _, tc := range []struct {
		name string
		want KernelKind
	}{{"naive", NaiveKernel}, {"blocked", Blocked}, {"simd", SIMD}} {
		got, err := ParseKernel(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ParseKernel(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
		if got.String() != tc.name {
			t.Fatalf("KernelKind(%v).String() = %q, want %q", got, got.String(), tc.name)
		}
	}
	if _, err := ParseKernel("turbo"); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel name")
	}
}

// batchShapes mixes homogeneous and heterogeneous triples, including
// single-row and threshold-crossing members, so the stacked-row
// partition is exercised across triple boundaries.
var batchShapes = [][]struct{ m, k, n int }{
	{{32, 50, 50}, {32, 50, 50}, {32, 50, 50}, {32, 50, 50}}, // same-shape fusion group
	{{1, 5, 3}, {7, 13, 31}, {64, 33, 17}, {2, 3, 4}},        // ragged shapes
	{{128, 100, 100}, {128, 100, 100}},                       // crosses parallelMinFlops
	{{5, 7, 9}},                                              // single triple
}

// TestBatchMulParity pins the grouped dispatchers against solo
// sequential calls, for every kernel family and worker count: each
// triple's result must be bitwise-identical however it is grouped or
// partitioned.
func TestBatchMulParity(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	kinds := append([]KernelKind{NaiveKernel}, forcedKinds...)
	for _, kind := range kinds {
		SetKernel(kind)
		t.Run(kind.String(), func(t *testing.T) {
			for gi, group := range batchShapes {
				r := rng.New(uint64(9000 + gi))
				nT := len(group)
				as := make([]*Dense, nT)
				bs := make([]*Dense, nT)
				bts := make([]*Dense, nT)
				ats := make([]*Dense, nT)
				wantMul := make([]*Dense, nT)
				wantMulT := make([]*Dense, nT)
				wantTMul := make([]*Dense, nT)
				for i, sh := range group {
					as[i] = randDense(r, sh.m, sh.k)
					bs[i] = randDense(r, sh.k, sh.n)
					bts[i] = randDense(r, sh.n, sh.k)
					ats[i] = randDense(r, sh.k, sh.m)
					wantMul[i] = NewDense(sh.m, sh.n)
					MulWorkers(wantMul[i], as[i], bs[i], 1)
					wantMulT[i] = NewDense(sh.m, sh.n)
					MulTWorkers(wantMulT[i], as[i], bts[i], 1)
					wantTMul[i] = NewDense(sh.m, sh.n)
					TMulWorkers(wantTMul[i], ats[i], bs[i], 1)
				}
				for _, w := range []int{1, 2, 3, 8} {
					dsts := make([]*Dense, nT)
					for i, sh := range group {
						dsts[i] = NewDense(sh.m, sh.n)
						dsts[i].Fill(42)
					}
					BatchMulWorkers(dsts, as, bs, w)
					for i := range dsts {
						bitwiseEqual(t, fmt.Sprintf("group %d BatchMul[%d] workers=%d", gi, i, w), dsts[i], wantMul[i])
					}

					for i, sh := range group {
						dsts[i] = NewDense(sh.m, sh.n)
						dsts[i].Fill(42)
					}
					BatchMulTWorkers(dsts, as, bts, w)
					for i := range dsts {
						bitwiseEqual(t, fmt.Sprintf("group %d BatchMulT[%d] workers=%d", gi, i, w), dsts[i], wantMulT[i])
					}

					for i, sh := range group {
						dsts[i] = NewDense(sh.m, sh.n)
						dsts[i].Fill(42)
					}
					BatchTMulWorkers(dsts, ats, bs, w)
					for i := range dsts {
						bitwiseEqual(t, fmt.Sprintf("group %d BatchTMul[%d] workers=%d", gi, i, w), dsts[i], wantTMul[i])
					}
				}
			}
		})
	}
}

// TestBatchMulChecks pins the grouped dispatchers' validation: length
// mismatches and per-triple shape mismatches must panic like the solo
// entry points, and empty batches are no-ops.
func TestBatchMulChecks(t *testing.T) {
	BatchMul(nil, nil, nil) // empty: no-op
	a := NewDense(2, 3)
	b := NewDense(3, 4)
	d := NewDense(2, 4)
	assertPanics(t, "length mismatch", func() { BatchMul([]*Dense{d}, []*Dense{a}, nil) })
	bad := NewDense(5, 4)
	assertPanics(t, "shape mismatch", func() {
		BatchMul([]*Dense{d, d}, []*Dense{a, a}, []*Dense{b, bad})
	})
}

// Tuned matrix-multiplication kernels. Mul, MulT and TMul dispatch to a
// register-blocked implementation (4-wide unrolled inner loops with
// multiple independent accumulator chains) and, above a size threshold,
// to a goroutine-parallel path that partitions *output rows* across
// workers. Three properties are deliberately engineered in:
//
//   - Bitwise determinism across worker counts. Every output row is
//     computed by the identical sequential row kernel regardless of how
//     rows are partitioned, so results are bit-for-bit the same for any
//     worker count. This is what lets the evaluation cache and the
//     deterministic parallel ASHA guarantee survive kernel parallelism.
//   - Bitwise agreement with the retained naive reference kernels
//     (NaiveMul/NaiveMulT/NaiveTMul) on finite inputs. The unrolled
//     loops keep each output element's additions in ascending-k order —
//     unrolling buys instruction-level parallelism from *independent*
//     element chains, never by splitting one element's sum — and every
//     product is passed through float64(·) so implementations that fuse
//     multiply-add (arm64, ppc64) cannot introduce drift.
//   - No av == 0 branch in the dense path. The naive kernels skip zero
//     multiplicands (profitable for sparse ReLU activations but a
//     mispredicted branch on dense data); the blocked kernels always
//     multiply. Adding av*bv with av == 0 contributes +0 or -0, and
//     IEEE-754 round-to-nearest addition of a signed zero never changes
//     a finite sum, so the skip is unobservable on finite data.
package mat

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// KernelKind selects the matmul implementation used by Mul/MulT/TMul.
type KernelKind int32

const (
	// Blocked is the tuned register-blocked (and, above the size
	// threshold, row-parallel) portable kernel family.
	Blocked KernelKind = iota
	// NaiveKernel routes Mul/MulT/TMul to the retained sequential
	// reference kernels — the pre-tuning baseline kept for property
	// tests and benchmark comparisons.
	NaiveKernel
	// SIMD is the AVX2 microkernel family (amd64 only), bitwise-
	// identical to Blocked and NaiveKernel. Selected by default when
	// the CPU supports it; requesting it elsewhere falls back to
	// Blocked.
	SIMD
)

// String implements fmt.Stringer with the names BHPO_KERNEL accepts.
func (k KernelKind) String() string {
	switch k {
	case Blocked:
		return "blocked"
	case NaiveKernel:
		return "naive"
	case SIMD:
		return "simd"
	default:
		return fmt.Sprintf("KernelKind(%d)", int32(k))
	}
}

// ParseKernel converts a kernel name ("naive", "blocked", "simd") to its
// KernelKind, for the BHPO_KERNEL environment override and flag parsing.
func ParseKernel(s string) (KernelKind, error) {
	switch s {
	case "blocked":
		return Blocked, nil
	case "naive":
		return NaiveKernel, nil
	case "simd":
		return SIMD, nil
	}
	return 0, fmt.Errorf("mat: unknown kernel %q (want naive, blocked or simd)", s)
}

var activeKernel atomic.Int32 // KernelKind; set by init

// init selects the fastest supported kernel family (SIMD where AVX2 is
// available, Blocked otherwise). The BHPO_KERNEL environment variable
// forces a specific family — the forced-fallback CI run uses it to keep
// the portable path tested on AVX2 hardware. Unknown names are ignored
// rather than fatal: kernel choice never changes results, only speed.
func init() {
	k := Blocked
	if simdAvailable {
		k = SIMD
	}
	if name := os.Getenv("BHPO_KERNEL"); name != "" {
		if parsed, err := ParseKernel(name); err == nil {
			k = parsed
		}
	}
	activeKernel.Store(int32(normalizeKernel(k)))
}

// normalizeKernel maps a requested kind to the kind that will actually
// run, so ActiveKernel always reports truthfully.
func normalizeKernel(k KernelKind) KernelKind {
	if k == SIMD && !simdAvailable {
		return Blocked
	}
	return k
}

// SetKernel switches the implementation behind Mul/MulT/TMul and returns
// the previous setting. Requesting SIMD without CPU support selects
// Blocked. It exists for benchmarks and tests that need a specific
// family end to end; production code never calls it.
func SetKernel(k KernelKind) KernelKind {
	return KernelKind(activeKernel.Swap(int32(normalizeKernel(k))))
}

// ActiveKernel returns the kernel family currently dispatched to.
func ActiveKernel() KernelKind { return KernelKind(activeKernel.Load()) }

// SIMDAvailable reports whether the SIMD kernel family is usable on this
// CPU (amd64 with AVX2 enabled by the OS).
func SIMDAvailable() bool { return simdAvailable }

// CPUFeatures returns a comma-separated list of the detected SIMD
// instruction-set extensions relevant to kernel selection (empty on
// platforms without the probe). For service introspection endpoints.
func CPUFeatures() string { return cpuFeatures() }

// parallelMinFlops is the multiply-add count below which the parallel
// path is never taken: partitioning costs two goroutine handoffs per
// worker (~µs), which only pays off once the sequential kernel runs for
// hundreds of µs. MLP-typical small batches (32×50×50 ≈ 80k flops) stay
// sequential; full-batch layers (256×200×200 ≈ 10M flops) partition.
const parallelMinFlops = 1 << 18

// resolveWorkers clamps a requested worker count against the machine,
// the row count and the problem size. workers <= 0 selects GOMAXPROCS.
func resolveWorkers(workers, rows, flops int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || flops < parallelMinFlops {
		return 1
	}
	return workers
}

// partitionRows runs f over [0, rows) split into contiguous chunks, one
// per worker. f must compute each row independently of the chunk bounds;
// that is what makes the output bitwise-identical for any worker count.
func partitionRows(rows, workers int, f func(i0, i1 int)) {
	if workers <= 1 {
		f(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < rows; i0 += chunk {
		i1 := i0 + chunk
		if i1 > rows {
			i1 = rows
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			f(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// Mul computes dst = a*b. dst must be a.rows×b.cols and distinct from a
// and b. It panics on shape mismatch. Parallelism defaults to GOMAXPROCS
// above the size threshold; use MulWorkers to cap it.
func Mul(dst, a, b *Dense) { MulWorkers(dst, a, b, 0) }

// MulWorkers is Mul with an explicit worker cap: 0 selects GOMAXPROCS, 1
// forces the sequential kernel. The result is bitwise-identical for any
// worker count.
func MulWorkers(dst, a, b *Dense, workers int) {
	checkMul(dst, a, b)
	kind := KernelKind(activeKernel.Load())
	if kind == NaiveKernel {
		naiveMul(dst, a, b)
		return
	}
	f := mulRangeKernel(kind)
	w := resolveWorkers(workers, a.rows, a.rows*a.cols*b.cols)
	if w <= 1 {
		// Direct call: the closure below captures and escapes, and the
		// sequential path must stay allocation-free for the zero-alloc
		// training loop.
		f(dst, a, b, 0, a.rows)
		return
	}
	partitionRows(a.rows, w, func(i0, i1 int) { f(dst, a, b, i0, i1) })
}

// rangeKernel computes a contiguous range of destination rows; every
// kernel family exposes its Mul/MulT/TMul bodies in this shape so the
// solo dispatchers, the row partitioner and the Batch* grouped
// dispatchers all run the identical per-row code.
type rangeKernel func(dst, a, b *Dense, i0, i1 int)

func mulRangeKernel(kind KernelKind) rangeKernel {
	if kind == SIMD {
		return mulSIMD
	}
	return mulBlocked
}

func mulTRangeKernel(kind KernelKind) rangeKernel {
	if kind == SIMD {
		return mulTSIMD
	}
	return mulTBlocked
}

func tMulRangeKernel(kind KernelKind) rangeKernel {
	if kind == SIMD {
		return tMulSIMD
	}
	return tMulBlocked
}

// MulT computes dst = a * bᵀ. dst must be a.rows×b.rows. See MulTWorkers.
func MulT(dst, a, b *Dense) { MulTWorkers(dst, a, b, 0) }

// MulTWorkers is MulT with an explicit worker cap (0 = GOMAXPROCS).
func MulTWorkers(dst, a, b *Dense, workers int) {
	checkMulT(dst, a, b)
	kind := KernelKind(activeKernel.Load())
	if kind == NaiveKernel {
		naiveMulT(dst, a, b)
		return
	}
	f := mulTRangeKernel(kind)
	w := resolveWorkers(workers, a.rows, a.rows*a.cols*b.rows)
	if w <= 1 {
		f(dst, a, b, 0, a.rows)
		return
	}
	partitionRows(a.rows, w, func(i0, i1 int) { f(dst, a, b, i0, i1) })
}

// TMul computes dst = aᵀ * b. dst must be a.cols×b.cols. See TMulWorkers.
func TMul(dst, a, b *Dense) { TMulWorkers(dst, a, b, 0) }

// TMulWorkers is TMul with an explicit worker cap (0 = GOMAXPROCS).
func TMulWorkers(dst, a, b *Dense, workers int) {
	checkTMul(dst, a, b)
	kind := KernelKind(activeKernel.Load())
	if kind == NaiveKernel {
		naiveTMul(dst, a, b)
		return
	}
	f := tMulRangeKernel(kind)
	w := resolveWorkers(workers, a.cols, a.rows*a.cols*b.cols)
	if w <= 1 {
		f(dst, a, b, 0, a.cols)
		return
	}
	partitionRows(a.cols, w, func(i0, i1 int) { f(dst, a, b, i0, i1) })
}

// mulBlocked computes rows [i0, i1) of dst = a*b. The k loop is unrolled
// 4-wide so each pass reads four b rows and touches dst once (4× less
// dst traffic than the naive kernel), and the j loop is unrolled 4-wide
// so four independent accumulator chains keep the FPU pipeline full.
// Each element's additions stay in ascending-k order.
func mulBlocked(dst, a, b *Dense, i0, i1 int) {
	kDim, n := a.cols, b.cols
	if n >= tileMinN && kDim >= tileMinK {
		// Wide B spills the caches when re-streamed per row; switch to
		// the panel-tiled driver (bitwise-identical, see tiled.go).
		mulTiled(dst, a, b, i0, i1, scalarAxpy)
		return
	}
	bd := b.data
	for i := i0; i < i1; i++ {
		arow := a.data[i*kDim : (i+1)*kDim]
		drow := dst.data[i*n : i*n+n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kDim; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			// Re-slicing each b row to len(drow) lets the compiler prove
			// every index below in bounds (one check per row per block
			// instead of four per element).
			b0 := bd[k*n : k*n+n][:len(drow)]
			b1 := bd[(k+1)*n : (k+1)*n+n][:len(drow)]
			b2 := bd[(k+2)*n : (k+2)*n+n][:len(drow)]
			b3 := bd[(k+3)*n : (k+3)*n+n][:len(drow)]
			for j := range drow {
				d := drow[j]
				d += float64(a0 * b0[j])
				d += float64(a1 * b1[j])
				d += float64(a2 * b2[j])
				d += float64(a3 * b3[j])
				drow[j] = d
			}
		}
		for ; k < kDim; k++ {
			av := arow[k]
			brow := bd[k*n : k*n+n][:len(drow)]
			for j, bv := range brow {
				drow[j] += float64(av * bv)
			}
		}
	}
}

// mulTBlocked computes rows [i0, i1) of dst = a * bᵀ. Four dot products
// against consecutive b rows share one pass over a's row; each keeps its
// own single accumulator, so the per-element order matches naive Dot
// while the four independent chains hide FP-add latency.
func mulTBlocked(dst, a, b *Dense, i0, i1 int) {
	kDim, n := a.cols, b.rows
	bd := b.data
	for i := i0; i < i1; i++ {
		arow := a.data[i*kDim : (i+1)*kDim : (i+1)*kDim]
		drow := dst.data[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := bd[j*kDim : (j+1)*kDim : (j+1)*kDim]
			b1 := bd[(j+1)*kDim : (j+2)*kDim : (j+2)*kDim]
			b2 := bd[(j+2)*kDim : (j+3)*kDim : (j+3)*kDim]
			b3 := bd[(j+3)*kDim : (j+4)*kDim : (j+4)*kDim]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += float64(av * b0[k])
				s1 += float64(av * b1[k])
				s2 += float64(av * b2[k])
				s3 += float64(av * b3[k])
			}
			drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			brow := bd[j*kDim : (j+1)*kDim : (j+1)*kDim]
			var s float64
			for k, av := range arow {
				s += float64(av * brow[k])
			}
			drow[j] = s
		}
	}
}

// tMulBlocked computes rows [i0, i1) of dst = aᵀ * b. Row i of dst is
// the aᵀ-row i (column i of a) combined with all of b; unrolling k
// 4-wide reads four a column entries and four b rows per pass over the
// destination row, with the same ascending-k per-element order as the
// naive kernel.
func tMulBlocked(dst, a, b *Dense, i0, i1 int) {
	kDim, p, n := a.rows, a.cols, b.cols
	if n >= tileMinN && kDim >= tileMinK {
		tMulTiled(dst, a, b, i0, i1, scalarAxpy)
		return
	}
	ad, bd := a.data, b.data
	for i := i0; i < i1; i++ {
		drow := dst.data[i*n : i*n+n : i*n+n]
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+4 <= kDim; k += 4 {
			a0 := ad[k*p+i]
			a1 := ad[(k+1)*p+i]
			a2 := ad[(k+2)*p+i]
			a3 := ad[(k+3)*p+i]
			// Same bounds-check-elimination re-slice as mulBlocked.
			b0 := bd[k*n : k*n+n][:len(drow)]
			b1 := bd[(k+1)*n : (k+1)*n+n][:len(drow)]
			b2 := bd[(k+2)*n : (k+2)*n+n][:len(drow)]
			b3 := bd[(k+3)*n : (k+3)*n+n][:len(drow)]
			for j := range drow {
				d := drow[j]
				d += float64(a0 * b0[j])
				d += float64(a1 * b1[j])
				d += float64(a2 * b2[j])
				d += float64(a3 * b3[j])
				drow[j] = d
			}
		}
		for ; k < kDim; k++ {
			av := ad[k*p+i]
			brow := bd[k*n : k*n+n][:len(drow)]
			for j, bv := range brow {
				drow[j] += float64(av * bv)
			}
		}
	}
}

// NaiveMul is the pre-tuning reference kernel for dst = a*b (sequential
// ikj loop with the zero-multiplicand skip). Retained so property tests
// and benchmarks can compare the blocked kernels against it.
func NaiveMul(dst, a, b *Dense) {
	checkMul(dst, a, b)
	naiveMul(dst, a, b)
}

func naiveMul(dst, a, b *Dense) {
	dst.Zero()
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += float64(av * bv)
			}
		}
	}
}

// NaiveMulT is the pre-tuning reference kernel for dst = a * bᵀ
// (row-by-row dot products).
func NaiveMulT(dst, a, b *Dense) {
	checkMulT(dst, a, b)
	naiveMulT(dst, a, b)
}

func naiveMulT(dst, a, b *Dense) {
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}

// NaiveTMul is the pre-tuning reference kernel for dst = aᵀ * b.
func NaiveTMul(dst, a, b *Dense) {
	checkTMul(dst, a, b)
	naiveTMul(dst, a, b)
}

func naiveTMul(dst, a, b *Dense) {
	dst.Zero()
	for k := 0; k < a.rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += float64(av * bv)
			}
		}
	}
}

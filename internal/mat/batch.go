package mat

import "fmt"

// Grouped ("batched") matmul dispatch: BatchMul and friends run many
// independent dst = a·b triples as one parallel dispatch that partitions
// the *stacked* destination-row space across workers. Each row is still
// computed by the identical sequential row kernel the solo entry points
// use, so every triple's result is bitwise-identical to a solo
// Mul/MulT/TMul at any worker count — that is what lets the fused
// cross-trial evaluator in internal/serve batch concurrent trials
// without perturbing a single score.
//
// The value of grouping is dispatch, not arithmetic: T small per-trial
// matmuls that individually sit below parallelMinFlops (and so run
// sequentially) sum to one dispatch that crosses the threshold and
// spreads across cores, and T goroutine fork/joins collapse into one.
// Shapes may differ between triples; the row partition is row-count
// balanced, which is near-optimal for the same-architecture groups the
// fused evaluator produces.

// BatchMul computes dsts[t] = as[t]*bs[t] for every triple. Slices must
// have equal length; each triple is shape-checked like Mul.
func BatchMul(dsts, as, bs []*Dense) { BatchMulWorkers(dsts, as, bs, 0) }

// BatchMulWorkers is BatchMul with an explicit worker cap
// (0 = GOMAXPROCS, 1 = fully sequential). Bitwise-identical results for
// any worker count and any grouping of the same triples.
func BatchMulWorkers(dsts, as, bs []*Dense, workers int) {
	batchCheckLen(len(dsts), len(as), len(bs))
	if len(dsts) == 0 {
		return
	}
	kind := KernelKind(activeKernel.Load())
	totalRows, totalFlops := 0, 0
	for t := range dsts {
		checkMul(dsts[t], as[t], bs[t])
		totalRows += as[t].rows
		totalFlops += as[t].rows * as[t].cols * bs[t].cols
	}
	if kind == NaiveKernel {
		for t := range dsts {
			naiveMul(dsts[t], as[t], bs[t])
		}
		return
	}
	batchDispatch(dsts, as, bs, mulRangeKernel(kind), batchRowsA, totalRows, totalFlops, workers)
}

// BatchMulT computes dsts[t] = as[t] * bs[t]ᵀ for every triple.
func BatchMulT(dsts, as, bs []*Dense) { BatchMulTWorkers(dsts, as, bs, 0) }

// BatchMulTWorkers is BatchMulT with an explicit worker cap.
func BatchMulTWorkers(dsts, as, bs []*Dense, workers int) {
	batchCheckLen(len(dsts), len(as), len(bs))
	if len(dsts) == 0 {
		return
	}
	kind := KernelKind(activeKernel.Load())
	totalRows, totalFlops := 0, 0
	for t := range dsts {
		checkMulT(dsts[t], as[t], bs[t])
		totalRows += as[t].rows
		totalFlops += as[t].rows * as[t].cols * bs[t].rows
	}
	if kind == NaiveKernel {
		for t := range dsts {
			naiveMulT(dsts[t], as[t], bs[t])
		}
		return
	}
	batchDispatch(dsts, as, bs, mulTRangeKernel(kind), batchRowsA, totalRows, totalFlops, workers)
}

// BatchTMul computes dsts[t] = as[t]ᵀ * bs[t] for every triple.
func BatchTMul(dsts, as, bs []*Dense) { BatchTMulWorkers(dsts, as, bs, 0) }

// BatchTMulWorkers is BatchTMul with an explicit worker cap.
func BatchTMulWorkers(dsts, as, bs []*Dense, workers int) {
	batchCheckLen(len(dsts), len(as), len(bs))
	if len(dsts) == 0 {
		return
	}
	kind := KernelKind(activeKernel.Load())
	totalRows, totalFlops := 0, 0
	for t := range dsts {
		checkTMul(dsts[t], as[t], bs[t])
		totalRows += as[t].cols // dst rows of aᵀ·b = a.cols
		totalFlops += as[t].rows * as[t].cols * bs[t].cols
	}
	if kind == NaiveKernel {
		for t := range dsts {
			naiveTMul(dsts[t], as[t], bs[t])
		}
		return
	}
	batchDispatch(dsts, as, bs, tMulRangeKernel(kind), batchRowsAT, totalRows, totalFlops, workers)
}

func batchCheckLen(d, a, b int) {
	if d != a || d != b {
		panic(fmt.Sprintf("mat: batch length mismatch dsts=%d as=%d bs=%d", d, a, b))
	}
}

// batchRowsA / batchRowsAT report triple t's destination-row count for
// the two partition geometries (rows of a, or columns of a for the
// transposed-left case).
func batchRowsA(a *Dense) int  { return a.rows }
func batchRowsAT(a *Dense) int { return a.cols }

// batchDispatch partitions the stacked destination-row space
// [0, totalRows) across workers and maps every global chunk back onto
// per-triple row ranges of the given range kernel. A chunk never splits
// a row, and each row is computed exactly as in the solo path.
func batchDispatch(dsts, as, bs []*Dense, f rangeKernel, rowsOf func(*Dense) int, totalRows, totalFlops, workers int) {
	w := resolveWorkers(workers, totalRows, totalFlops)
	if w <= 1 {
		for t := range dsts {
			f(dsts[t], as[t], bs[t], 0, rowsOf(as[t]))
		}
		return
	}
	partitionRows(totalRows, w, func(g0, g1 int) {
		off := 0
		for t := range dsts {
			rows := rowsOf(as[t])
			lo, hi := g0-off, g1-off
			if lo < 0 {
				lo = 0
			}
			if hi > rows {
				hi = rows
			}
			if lo < hi {
				f(dsts[t], as[t], bs[t], lo, hi)
			}
			off += rows
			if off >= g1 {
				break
			}
		}
	})
}

package scoring

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBetaEndpoints(t *testing.T) {
	betaMax := 10.0
	gammaMin, gammaMax := GammaBounds(betaMax)
	if got := Beta(gammaMin, betaMax); !almostEq(got, betaMax, 1e-9) {
		t.Fatalf("Beta(gammaMin) = %v, want %v", got, betaMax)
	}
	if got := Beta(gammaMax, betaMax); !almostEq(got, 0, 1e-9) {
		t.Fatalf("Beta(gammaMax) = %v, want 0", got)
	}
	if got := Beta(50, betaMax); !almostEq(got, betaMax/2, 1e-9) {
		t.Fatalf("Beta(50) = %v, want %v", got, betaMax/2)
	}
}

func TestBetaClampsOutsideBounds(t *testing.T) {
	betaMax := 10.0
	if got := Beta(0, betaMax); !almostEq(got, betaMax, 1e-9) {
		t.Fatalf("Beta(0) = %v", got)
	}
	if got := Beta(100, betaMax); !almostEq(got, 0, 1e-9) {
		t.Fatalf("Beta(100) = %v", got)
	}
	if got := Beta(-5, betaMax); !almostEq(got, betaMax, 1e-9) {
		t.Fatalf("Beta(-5) = %v", got)
	}
}

func TestBetaMonotoneDecreasing(t *testing.T) {
	// Figure 3: β decreases as the sampling ratio grows.
	prev := math.Inf(1)
	for g := 0.0; g <= 100; g += 0.5 {
		b := Beta(g, 10)
		if b > prev+1e-12 {
			t.Fatalf("β increased at γ=%v: %v > %v", g, b, prev)
		}
		prev = b
	}
}

func TestBetaSymmetricAroundFifty(t *testing.T) {
	// The design is symmetric: β(50−d) − β_max/2 = β_max/2 − β(50+d).
	betaMax := 10.0
	for _, d := range []float64{1, 5, 10, 20, 30, 40} {
		lo := Beta(50-d, betaMax)
		hi := Beta(50+d, betaMax)
		if !almostEq(lo-betaMax/2, betaMax/2-hi, 1e-9) {
			t.Fatalf("asymmetry at d=%v: %v vs %v", d, lo, hi)
		}
	}
}

func TestBetaWithinRangeProperty(t *testing.T) {
	f := func(gRaw, bRaw uint16) bool {
		gamma := float64(gRaw%10001) / 100 // [0, 100]
		betaMax := 1 + float64(bRaw%2000)/100
		b := Beta(gamma, betaMax)
		return b >= -1e-9 && b <= betaMax+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanScorer(t *testing.T) {
	s := MeanScorer{}
	if got := s.Score([]float64{0.8, 0.9, 1.0}, 10); !almostEq(got, 0.9, 1e-12) {
		t.Fatalf("mean = %v", got)
	}
	if s.Name() != "mean" {
		t.Errorf("name = %q", s.Name())
	}
	// Gamma irrelevant for the mean.
	if s.Score([]float64{0.5}, 1) != s.Score([]float64{0.5}, 99) {
		t.Error("mean scorer depends on gamma")
	}
}

func TestUCBScorerAddsVarianceBonus(t *testing.T) {
	s := UCBScorer{Alpha: 0.1, BetaMax: 10}
	stable := []float64{0.8, 0.8, 0.8}
	volatile := []float64{0.7, 0.8, 0.9}
	gamma := 5.0 // small subset: variance counts a lot
	if s.Score(stable, gamma) >= s.Score(volatile, gamma) {
		t.Fatal("volatile config with equal mean should score higher on small subsets")
	}
	// Past γ_max (≈99.33 for β_max=10) β clamps to exactly 0: the bonus
	// vanishes and the score reduces to the mean.
	g := 99.9
	if !almostEq(s.Score(volatile, g), 0.8, 1e-9) {
		t.Fatalf("full-budget score %v should reduce to mean", s.Score(volatile, g))
	}
}

func TestUCBScorerDefaults(t *testing.T) {
	zero := UCBScorer{}
	explicit := UCBScorer{Alpha: DefaultAlpha, BetaMax: DefaultBetaMax}
	scores := []float64{0.6, 0.7, 0.9}
	if zero.Score(scores, 10) != explicit.Score(scores, 10) {
		t.Fatal("zero-value scorer should use paper defaults")
	}
	if zero.Name() == "" {
		t.Error("empty name")
	}
}

func TestUCBBonusShrinksWithGamma(t *testing.T) {
	s := UCBScorer{Alpha: 0.1, BetaMax: 10}
	volatile := []float64{0.7, 0.8, 0.9}
	prev := math.Inf(1)
	for _, gamma := range []float64{1, 5, 10, 25, 50, 75, 95} {
		score := s.Score(volatile, gamma)
		if score > prev+1e-12 {
			t.Fatalf("score grew with gamma at %v", gamma)
		}
		prev = score
	}
}

func TestGamma(t *testing.T) {
	if got := Gamma(25, 100); got != 25 {
		t.Fatalf("Gamma = %v", got)
	}
	if got := Gamma(100, 100); got != 100 {
		t.Fatalf("Gamma = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Gamma(total<=0) should panic")
		}
	}()
	Gamma(1, 0)
}

func TestBetaSeries(t *testing.T) {
	gammas, betas := BetaSeries(10, 101)
	if len(gammas) != 101 || len(betas) != 101 {
		t.Fatalf("series lengths %d/%d", len(gammas), len(betas))
	}
	if gammas[0] != 0 || gammas[100] != 100 {
		t.Fatalf("gamma endpoints %v..%v", gammas[0], gammas[100])
	}
	if !almostEq(betas[0], 10, 1e-9) || !almostEq(betas[100], 0, 1e-9) {
		t.Fatalf("beta endpoints %v..%v", betas[0], betas[100])
	}
	// Degenerate point count is padded.
	g, b := BetaSeries(10, 1)
	if len(g) != 2 || len(b) != 2 {
		t.Fatal("series did not pad point count")
	}
}

func TestGammaBoundsOrdering(t *testing.T) {
	f := func(raw uint16) bool {
		betaMax := 0.5 + float64(raw%2000)/100
		lo, hi := GammaBounds(betaMax)
		return lo > 0 && hi < 100 && lo < hi && almostEq(lo+hi, 100, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

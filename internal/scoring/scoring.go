// Package scoring implements §III-C of the paper: the configuration
// evaluation metric that augments the plain mean of fold scores with the
// fold variance (UCB-style, Eq. 1) weighted by a subset-size term β(γ)
// (Eq. 2), giving the final score s = μ + α·β(γ)·σ (Eq. 3).
//
// γ is the sampling ratio in percent: γ = |b_t| / |B| × 100, where b_t is
// the per-configuration budget and B the full budget. β decays from β_max
// at tiny subsets to 0 at near-full subsets via atanh, so variance counts
// most exactly when evaluations are least reliable — and the design is
// symmetric around γ = 50 to also suit plain cross-validation use.
package scoring

import (
	"fmt"
	"math"

	"enhancedbhpo/internal/stats"
)

// Paper-recommended defaults (§IV-B).
const (
	// DefaultAlpha is the variance weight α.
	DefaultAlpha = 0.1
	// DefaultBetaMax is β_max; the paper recommends β_max = 1/α so the
	// combined weight α·β is normalized to at most 1.
	DefaultBetaMax = 10.0
)

// GammaBounds returns the clamping thresholds γ_min and γ_max of Eq. 2:
// γ_min = 50(1 − tanh(β_max/4)) and γ_max = 50(1 − tanh(−β_max/4)).
// They keep β within [0, β_max].
func GammaBounds(betaMax float64) (gammaMin, gammaMax float64) {
	gammaMin = 50 * (1 - math.Tanh(betaMax/4))
	gammaMax = 50 * (1 - math.Tanh(-betaMax/4))
	return gammaMin, gammaMax
}

// Beta evaluates Eq. 2: β(γ) = 2·atanh(1 − clamp(γ)/50) + β_max/2, with γ
// the sampling ratio in percent (0–100). The result lies in [0, β_max]:
// β(γ_min) = β_max, β(50) = β_max/2, β(γ_max) = 0.
func Beta(gamma, betaMax float64) float64 {
	gammaMin, gammaMax := GammaBounds(betaMax)
	g := gamma
	if g < gammaMin {
		g = gammaMin
	}
	if g > gammaMax {
		g = gammaMax
	}
	b := 2*math.Atanh(1-g/50) + betaMax/2
	// Clamp floating-point residue at the boundaries into [0, β_max].
	if b < 0 {
		b = 0
	}
	if b > betaMax {
		b = betaMax
	}
	return b
}

// Scorer turns per-fold results into a single configuration score. gamma is
// the sampling ratio in percent of the full budget.
type Scorer interface {
	// Score aggregates fold scores into the configuration's ranking score.
	Score(foldScores []float64, gamma float64) float64
	// Name identifies the scorer in experiment output.
	Name() string
}

// MeanScorer is the vanilla metric: the average of fold scores. This is
// what plain SHA/Hyperband/BOHB use.
type MeanScorer struct{}

// Score returns the mean of foldScores.
func (MeanScorer) Score(foldScores []float64, _ float64) float64 {
	return stats.Mean(foldScores)
}

// Name implements Scorer.
func (MeanScorer) Name() string { return "mean" }

// UCBScorer is the paper's enhanced metric (Eq. 3):
// s = μ + α·β(γ)·σ with σ the standard deviation across folds.
type UCBScorer struct {
	// Alpha is the variance weight α. 0 selects DefaultAlpha.
	Alpha float64
	// BetaMax is β_max. 0 selects DefaultBetaMax.
	BetaMax float64
}

// Score evaluates Eq. 3 on the fold results.
func (s UCBScorer) Score(foldScores []float64, gamma float64) float64 {
	alpha := s.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	betaMax := s.BetaMax
	if betaMax == 0 {
		betaMax = DefaultBetaMax
	}
	mu := stats.Mean(foldScores)
	sigma := stats.StdDev(foldScores)
	return mu + alpha*Beta(gamma, betaMax)*sigma
}

// Name implements Scorer.
func (s UCBScorer) Name() string { return "ucb-beta" }

// Gamma converts a subset size and full budget into the percentage ratio
// used by Beta. It panics if total is not positive.
func Gamma(subset, total int) float64 {
	if total <= 0 {
		panic(fmt.Sprintf("scoring: total budget %d <= 0", total))
	}
	return float64(subset) / float64(total) * 100
}

// BetaSeries samples β over γ ∈ [0, 100] with the given number of points —
// the series plotted in the paper's Figure 3.
func BetaSeries(betaMax float64, points int) (gammas, betas []float64) {
	if points < 2 {
		points = 2
	}
	gammas = make([]float64, points)
	betas = make([]float64, points)
	for i := 0; i < points; i++ {
		g := float64(i) * 100 / float64(points-1)
		gammas[i] = g
		betas[i] = Beta(g, betaMax)
	}
	return gammas, betas
}

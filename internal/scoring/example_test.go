package scoring_test

import (
	"fmt"

	"enhancedbhpo/internal/scoring"
)

// Two configurations tie on mean fold accuracy, but on a small subset the
// volatile one keeps more upside: the UCB-β score (Eq. 3) ranks it higher,
// while at (near-)full budget the bonus disappears.
func ExampleUCBScorer() {
	stable := []float64{0.80, 0.80, 0.80, 0.80, 0.80}
	volatile := []float64{0.70, 0.75, 0.80, 0.85, 0.90}
	s := scoring.UCBScorer{Alpha: 0.1, BetaMax: 10}

	smallSubset := 5.0 // γ = 5% of the full budget
	fmt.Printf("at 5%%:  stable %.4f, volatile %.4f\n",
		s.Score(stable, smallSubset), s.Score(volatile, smallSubset))

	fullBudget := 99.9
	fmt.Printf("at 100%%: stable %.4f, volatile %.4f\n",
		s.Score(stable, fullBudget), s.Score(volatile, fullBudget))
	// Output:
	// at 5%:  stable 0.8000, volatile 0.8562
	// at 100%: stable 0.8000, volatile 0.8000
}

// Beta reproduces the paper's Figure 3 curve: β_max at tiny subsets,
// β_max/2 at half, 0 near the full dataset.
func ExampleBeta() {
	for _, gamma := range []float64{0, 25, 50, 75, 100} {
		fmt.Printf("γ=%3.0f β=%.3f\n", gamma, scoring.Beta(gamma, 10))
	}
	// Output:
	// γ=  0 β=10.000
	// γ= 25 β=6.099
	// γ= 50 β=5.000
	// γ= 75 β=3.901
	// γ=100 β=0.000
}

// Package trace analyzes optimization trajectories: incumbent
// (best-so-far) curves, cumulative budget accounting, and per-round
// summaries. It backs the anytime-performance comparison between vanilla
// and enhanced methods — the "is it better at every time point, not just
// at the end" question — and gives library users a way to inspect what an
// optimizer actually did.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"enhancedbhpo/internal/hpo"
)

// Point is one step of an incumbent curve.
type Point struct {
	// Evaluations completed so far (including this one).
	Evaluations int
	// CumBudget is the total instances consumed so far.
	CumBudget int
	// CumTime is the summed evaluation wall time so far.
	CumTime time.Duration
	// BestScore is the incumbent (highest) score seen so far.
	BestScore float64
}

// Anytime returns the incumbent curve over the trial sequence in arrival
// order. An empty trial list yields an empty curve.
func Anytime(trials []hpo.Trial) []Point {
	points := make([]Point, 0, len(trials))
	best := 0.0
	haveBest := false
	cumBudget := 0
	var cumTime time.Duration
	for i, tr := range trials {
		cumBudget += tr.Budget
		cumTime += tr.Elapsed
		if !haveBest || tr.Score > best {
			best = tr.Score
			haveBest = true
		}
		points = append(points, Point{
			Evaluations: i + 1,
			CumBudget:   cumBudget,
			CumTime:     cumTime,
			BestScore:   best,
		})
	}
	return points
}

// TotalBudget returns the total instances consumed by the trials.
func TotalBudget(trials []hpo.Trial) int {
	total := 0
	for _, tr := range trials {
		total += tr.Budget
	}
	return total
}

// RoundSummary aggregates one halving round (or rung).
type RoundSummary struct {
	Round       int
	Evaluations int
	Budget      int // per-configuration budget of the round
	BestScore   float64
	MeanScore   float64
}

// ByRound groups trials into per-round summaries, ordered by round.
func ByRound(trials []hpo.Trial) []RoundSummary {
	byRound := map[int]*RoundSummary{}
	for _, tr := range trials {
		rs, ok := byRound[tr.Round]
		if !ok {
			rs = &RoundSummary{Round: tr.Round, BestScore: tr.Score}
			byRound[tr.Round] = rs
		}
		rs.Evaluations++
		rs.Budget = tr.Budget
		if tr.Score > rs.BestScore {
			rs.BestScore = tr.Score
		}
		rs.MeanScore += tr.Score
	}
	out := make([]RoundSummary, 0, len(byRound))
	for _, rs := range byRound {
		rs.MeanScore /= float64(rs.Evaluations)
		out = append(out, *rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// AreaUnderCurve integrates the incumbent score over cumulative budget —
// a single scalar for "how good, how early". Higher is better; curves are
// compared at equal total budget by normalizing with the final budget.
func AreaUnderCurve(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	var area float64
	prevBudget := 0
	for _, p := range points {
		area += p.BestScore * float64(p.CumBudget-prevBudget)
		prevBudget = p.CumBudget
	}
	if prevBudget == 0 {
		return 0
	}
	return area / float64(prevBudget)
}

// Fprint renders a result's trajectory: per-round table plus the final
// incumbent.
func Fprint(w io.Writer, res *hpo.Result) {
	fmt.Fprintf(w, "method %s: %d evaluations, %d instances total, %.2fs\n",
		res.Method, res.Evaluations, TotalBudget(res.Trials), res.Elapsed.Seconds())
	fmt.Fprintf(w, "  %-6s %-6s %-8s %-10s %-10s\n", "round", "evals", "budget", "best", "mean")
	for _, rs := range ByRound(res.Trials) {
		fmt.Fprintf(w, "  %-6d %-6d %-8d %-10.4f %-10.4f\n",
			rs.Round, rs.Evaluations, rs.Budget, rs.BestScore, rs.MeanScore)
	}
	points := Anytime(res.Trials)
	if len(points) > 0 {
		fmt.Fprintf(w, "  incumbent %.4f, budget-normalized AUC %.4f\n",
			points[len(points)-1].BestScore, AreaUnderCurve(points))
	}
}

// Sparkline renders the incumbent curve as a compact ASCII strip, for
// logs and examples.
func Sparkline(points []Point, width int) string {
	if len(points) == 0 || width <= 0 {
		return ""
	}
	levels := []byte("_.-=#")
	lo := points[0].BestScore
	hi := points[len(points)-1].BestScore
	if hi <= lo {
		return strings.Repeat(string(levels[len(levels)-1]), min(width, len(points)))
	}
	var b strings.Builder
	step := float64(len(points)) / float64(width)
	if step < 1 {
		step = 1
		width = len(points)
	}
	for i := 0; i < width; i++ {
		idx := int(float64(i) * step)
		if idx >= len(points) {
			idx = len(points) - 1
		}
		frac := (points[idx].BestScore - lo) / (hi - lo)
		level := int(frac * float64(len(levels)-1))
		b.WriteByte(levels[level])
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// pointJSON is the wire form of Point. CumTime travels as integer
// nanoseconds so curves round-trip bit-for-bit; scores rely on
// encoding/json's shortest-round-trip float rendering.
type pointJSON struct {
	Evaluations int     `json:"evaluations"`
	CumBudget   int     `json:"cum_budget"`
	CumTimeNS   int64   `json:"cum_time_ns"`
	BestScore   float64 `json:"best_score"`
}

// MarshalJSON implements json.Marshaler.
func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(pointJSON{
		Evaluations: p.Evaluations,
		CumBudget:   p.CumBudget,
		CumTimeNS:   p.CumTime.Nanoseconds(),
		BestScore:   p.BestScore,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Point) UnmarshalJSON(data []byte) error {
	var pj pointJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return fmt.Errorf("trace: decoding point: %w", err)
	}
	*p = Point{
		Evaluations: pj.Evaluations,
		CumBudget:   pj.CumBudget,
		CumTime:     time.Duration(pj.CumTimeNS),
		BestScore:   pj.BestScore,
	}
	return nil
}

// EncodeAnytime writes an incumbent curve as a JSON array. It is the one
// serialization shared by the bhpod status endpoint and the experiments
// CLI, so curves produced by either can be consumed by the same tooling.
func EncodeAnytime(w io.Writer, points []Point) error {
	if points == nil {
		points = []Point{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(points)
}

// DecodeAnytime reads a JSON incumbent curve written by EncodeAnytime.
func DecodeAnytime(r io.Reader) ([]Point, error) {
	var points []Point
	if err := json.NewDecoder(r).Decode(&points); err != nil {
		return nil, fmt.Errorf("trace: decoding anytime curve: %w", err)
	}
	return points, nil
}

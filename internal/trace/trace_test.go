package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"enhancedbhpo/internal/hpo"
)

func sampleTrials() []hpo.Trial {
	return []hpo.Trial{
		{Budget: 100, Round: 0, Score: 0.5, Elapsed: time.Millisecond},
		{Budget: 100, Round: 0, Score: 0.7, Elapsed: time.Millisecond},
		{Budget: 100, Round: 0, Score: 0.6, Elapsed: time.Millisecond},
		{Budget: 200, Round: 1, Score: 0.75, Elapsed: 2 * time.Millisecond},
		{Budget: 200, Round: 1, Score: 0.65, Elapsed: 2 * time.Millisecond},
		{Budget: 400, Round: 2, Score: 0.8, Elapsed: 4 * time.Millisecond},
	}
}

func TestAnytimeMonotone(t *testing.T) {
	points := Anytime(sampleTrials())
	if len(points) != 6 {
		t.Fatalf("%d points", len(points))
	}
	prev := -1.0
	for i, p := range points {
		if p.BestScore < prev {
			t.Fatalf("incumbent decreased at %d", i)
		}
		prev = p.BestScore
		if p.Evaluations != i+1 {
			t.Fatalf("evaluations at %d = %d", i, p.Evaluations)
		}
	}
	last := points[len(points)-1]
	if last.BestScore != 0.8 {
		t.Fatalf("final incumbent %v", last.BestScore)
	}
	if last.CumBudget != 1100 {
		t.Fatalf("cumulative budget %d", last.CumBudget)
	}
	if last.CumTime != 11*time.Millisecond {
		t.Fatalf("cumulative time %v", last.CumTime)
	}
}

func TestAnytimeEmpty(t *testing.T) {
	if got := Anytime(nil); len(got) != 0 {
		t.Fatalf("empty trials gave %d points", len(got))
	}
	if AreaUnderCurve(nil) != 0 {
		t.Fatal("empty AUC != 0")
	}
}

func TestTotalBudget(t *testing.T) {
	if got := TotalBudget(sampleTrials()); got != 1100 {
		t.Fatalf("total budget %d", got)
	}
}

func TestByRound(t *testing.T) {
	rounds := ByRound(sampleTrials())
	if len(rounds) != 3 {
		t.Fatalf("%d rounds", len(rounds))
	}
	if rounds[0].Evaluations != 3 || rounds[1].Evaluations != 2 || rounds[2].Evaluations != 1 {
		t.Fatalf("evaluation counts wrong: %+v", rounds)
	}
	if rounds[0].BestScore != 0.7 {
		t.Fatalf("round 0 best %v", rounds[0].BestScore)
	}
	if rounds[1].Budget != 200 {
		t.Fatalf("round 1 budget %d", rounds[1].Budget)
	}
	wantMean := (0.5 + 0.7 + 0.6) / 3
	if diff := rounds[0].MeanScore - wantMean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("round 0 mean %v", rounds[0].MeanScore)
	}
}

func TestAreaUnderCurve(t *testing.T) {
	points := []Point{
		{CumBudget: 100, BestScore: 0.5},
		{CumBudget: 200, BestScore: 1.0},
	}
	// 0.5*100 + 1.0*100 over 200 = 0.75.
	if got := AreaUnderCurve(points); got != 0.75 {
		t.Fatalf("AUC = %v", got)
	}
	// A curve that reaches the optimum earlier has higher AUC.
	early := []Point{{CumBudget: 100, BestScore: 1.0}, {CumBudget: 200, BestScore: 1.0}}
	if AreaUnderCurve(early) <= AreaUnderCurve(points) {
		t.Fatal("early success did not raise AUC")
	}
}

func TestFprint(t *testing.T) {
	res := &hpo.Result{Method: "sha", Trials: sampleTrials(), Evaluations: 6}
	var buf bytes.Buffer
	Fprint(&buf, res)
	out := buf.String()
	for _, want := range []string{"method sha", "round", "incumbent 0.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	points := Anytime(sampleTrials())
	s := Sparkline(points, 10)
	if len(s) == 0 {
		t.Fatal("empty sparkline")
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("nil points should give empty sparkline")
	}
	flat := []Point{{CumBudget: 1, BestScore: 0.5}, {CumBudget: 2, BestScore: 0.5}}
	if s := Sparkline(flat, 5); !strings.Contains(s, "#") {
		t.Fatalf("flat curve sparkline %q", s)
	}
}

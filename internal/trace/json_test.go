package trace

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestAnytimeJSONRoundTrip(t *testing.T) {
	curve := []Point{
		{Evaluations: 1, CumBudget: 100, CumTime: 1500 * time.Microsecond, BestScore: 0.25},
		{Evaluations: 2, CumBudget: 300, CumTime: 3 * time.Millisecond, BestScore: 1.0 / 3.0},
		{Evaluations: 3, CumBudget: 900, CumTime: 3*time.Millisecond + 17*time.Nanosecond, BestScore: math.Nextafter(1, 0)},
	}
	var buf bytes.Buffer
	if err := EncodeAnytime(&buf, curve); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAnytime(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(curve) {
		t.Fatalf("round-tripped %d points, want %d", len(got), len(curve))
	}
	for i := range curve {
		if got[i] != curve[i] {
			t.Fatalf("point %d: %+v != %+v (scores must round-trip bit-for-bit)", i, got[i], curve[i])
		}
	}
}

func TestAnytimeJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeAnytime(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); s != "[]\n" {
		t.Fatalf("nil curve encoded as %q, want []", s)
	}
	got, err := DecodeAnytime(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d points from empty curve", len(got))
	}
}

func TestAnytimeJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeAnytime(bytes.NewReader([]byte(`{"not":"an array"}`))); err == nil {
		t.Fatal("expected error decoding a non-array")
	}
}

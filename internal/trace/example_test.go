package trace_test

import (
	"fmt"
	"time"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/trace"
)

// Anytime turns a trial history into the incumbent (best-so-far) curve;
// AreaUnderCurve condenses it into one "how good, how early" scalar.
func ExampleAnytime() {
	trials := []hpo.Trial{
		{Budget: 100, Round: 0, Score: 0.60, Elapsed: time.Millisecond},
		{Budget: 100, Round: 0, Score: 0.72, Elapsed: time.Millisecond},
		{Budget: 200, Round: 1, Score: 0.70, Elapsed: time.Millisecond},
		{Budget: 400, Round: 2, Score: 0.81, Elapsed: time.Millisecond},
	}
	points := trace.Anytime(trials)
	for _, p := range points {
		fmt.Printf("eval %d: budget %d, best %.2f\n", p.Evaluations, p.CumBudget, p.BestScore)
	}
	fmt.Printf("AUC %.3f\n", trace.AreaUnderCurve(points))
	// Output:
	// eval 1: budget 100, best 0.60
	// eval 2: budget 200, best 0.72
	// eval 3: budget 400, best 0.72
	// eval 4: budget 800, best 0.81
	// AUC 0.750
}

// Package core is the public façade of the repository: it wires the
// substrates (datasets, MLPs, clustering) and the bandit framework into a
// single entry point. A caller picks a Method (random / SHA / Hyperband /
// BOHB / ASHA) and a Variant (Vanilla, or the paper's Enhanced components:
// instance grouping, general+special folds and the variance/size-aware
// score), calls Run, and receives the selected configuration, a model
// refitted on the full training set, and train/test scores — the quantities
// reported in the paper's Table IV.
package core

import (
	"context"
	"fmt"
	"time"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

// Method selects the bandit-based optimizer.
type Method int

const (
	// Random is the random-search baseline.
	Random Method = iota
	// SHA is Successive Halving.
	SHA
	// Hyperband is the bracket schedule over SHA.
	Hyperband
	// BOHB is Hyperband with TPE-model-based sampling.
	BOHB
	// ASHA is asynchronous successive halving.
	ASHA
	// PASHA is progressive ASHA (grows the rung ladder on demand).
	PASHA
	// DEHB is differential-evolution Hyperband.
	DEHB
	// SMAC is the random-forest-surrogate sequential Bayesian optimizer
	// (full-budget baseline, per §IV-B).
	SMAC
	// TPE is the Optuna-style sequential TPE optimizer (full-budget
	// baseline, per §IV-B).
	TPE
	// Grid is exhaustive grid search at full budget.
	Grid
)

// methodNames maps the enum to the hpo registry's canonical method names.
var methodNames = [...]string{
	Random:    "random",
	SHA:       "sha",
	Hyperband: "hyperband",
	BOHB:      "bohb",
	ASHA:      "asha",
	PASHA:     "pasha",
	DEHB:      "dehb",
	SMAC:      "smac",
	TPE:       "tpe",
	Grid:      "grid",
}

// String implements fmt.Stringer.
func (m Method) String() string {
	if m >= 0 && int(m) < len(methodNames) {
		return methodNames[m]
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod converts a method name used by the CLI tools. Registry
// aliases ("hb", "optuna") are accepted and resolve to the canonical
// method.
func ParseMethod(s string) (Method, error) {
	canonical, ok := hpo.CanonicalName(s)
	if !ok {
		return 0, fmt.Errorf("core: unknown method %q", s)
	}
	for m, name := range methodNames {
		if name == canonical {
			return Method(m), nil
		}
	}
	return 0, fmt.Errorf("core: method %q is registered but has no core enum value", canonical)
}

// Variant selects vanilla or paper-enhanced components.
type Variant int

const (
	// Vanilla uses stratified folds and the plain-mean score.
	Vanilla Variant = iota
	// Enhanced uses the paper's grouping, general+special folds and UCB-β
	// score — the "+" variants of Table IV.
	Enhanced
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == Enhanced {
		return "enhanced"
	}
	return "vanilla"
}

// Options configure a Run.
type Options struct {
	// Method selects the optimizer. Defaults to SHA.
	Method Method
	// Variant selects vanilla or enhanced components.
	Variant Variant
	// Space is the configuration space to search. Required.
	Space *search.Space
	// Base supplies the non-searched nn.Config fields; zero value selects
	// nn.DefaultConfig.
	Base nn.Config
	// K is the fold count for vanilla components (enhanced components
	// derive it from KGen+KSpe). 0 selects 5.
	K int
	// Enhanced tunes the paper's components when Variant == Enhanced.
	Enhanced hpo.EnhancedOptions
	// The per-method option blocks tune the respective optimizers; the
	// Seed below overrides their seeds.
	SHA    hpo.SHAOptions
	HB     hpo.HyperbandOptions
	BOHB   hpo.BOHBOptions
	ASHA   hpo.ASHAOptions
	PASHA  hpo.PASHAOptions
	DEHB   hpo.DEHBOptions
	SMAC   hpo.SMACOptions
	TPE    hpo.TPEOptions
	Grid   hpo.GridSearchOptions
	Random hpo.RandomSearchOptions
	// MaxConfigs caps how many configurations are considered by methods
	// that honor it (SHA start set, ASHA/PASHA samples, grid cap); 0 =
	// whole space / method default. A non-zero per-method block setting
	// wins.
	MaxConfigs int
	// UseF1 scores classification folds (and the final model) by F1.
	UseF1 bool
	// Seed makes the run reproducible.
	Seed uint64
}

// Outcome is the result of one optimization run.
type Outcome struct {
	// Search is the raw optimizer result (best config, trials, timing).
	Search *hpo.Result
	// Model is the best configuration refitted on the full training set.
	Model *nn.Model
	// TrainScore and TestScore are the refitted model's scores (accuracy,
	// F1 or R² depending on the task and UseF1).
	TrainScore, TestScore float64
	// SetupTime covers group construction (zero for vanilla variants).
	SetupTime time.Duration
	// SearchTime covers the optimizer run.
	SearchTime time.Duration
	// TotalTime = SetupTime + SearchTime + final refit.
	TotalTime time.Duration
}

// Run optimizes hyperparameters on train and reports final quality on test.
func Run(train, test *dataset.Dataset, opts Options) (*Outcome, error) {
	return RunCtx(context.Background(), train, test, opts)
}

// RunCtx is Run with cancellation: every registered method stops before
// starting another evaluation once ctx is cancelled and returns ctx's
// error.
func RunCtx(ctx context.Context, train, test *dataset.Dataset, opts Options) (*Outcome, error) {
	if opts.Space == nil {
		return nil, fmt.Errorf("core: Options.Space is required")
	}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("core: train: %w", err)
	}
	if err := test.Validate(); err != nil {
		return nil, fmt.Errorf("core: test: %w", err)
	}
	base := opts.Base
	if len(base.HiddenLayerSizes) == 0 {
		base = nn.DefaultConfig()
	}
	totalStart := time.Now()
	root := rng.New(opts.Seed ^ 0xc0de)

	var comps hpo.Components
	var setup time.Duration
	if opts.Variant == Enhanced {
		setupStart := time.Now()
		c, err := hpo.EnhancedComponents(train, opts.Enhanced, root.Split(1))
		if err != nil {
			return nil, fmt.Errorf("core: building enhanced components: %w", err)
		}
		comps = c
		setup = time.Since(setupStart)
	} else {
		comps = hpo.VanillaComponents(opts.K)
	}
	ev := hpo.NewCVEvaluator(train, base, comps)
	ev.UseF1 = opts.UseF1

	// Dispatch through the hpo registry — the same code path the job
	// service uses, so CLI runs and served jobs are provably identical for
	// a given seed. The per-method blocks ride along untouched; shared
	// knobs (Seed, MaxConfigs) fill block fields left at zero.
	method, ok := hpo.LookupMethod(opts.Method.String())
	if !ok {
		return nil, fmt.Errorf("core: unknown method %v", opts.Method)
	}
	res, err := method.Run(ctx, opts.Space, ev, comps, hpo.RunOptions{
		Seed:       opts.Seed,
		MaxConfigs: opts.MaxConfigs,
		SHA:        opts.SHA,
		HB:         opts.HB,
		BOHB:       opts.BOHB,
		ASHA:       opts.ASHA,
		PASHA:      opts.PASHA,
		DEHB:       opts.DEHB,
		SMAC:       opts.SMAC,
		TPE:        opts.TPE,
		Grid:       opts.Grid,
		Random:     opts.Random,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", opts.Method, err)
	}

	model, err := ev.FitFull(res.Best, root.Split(3).Uint64())
	if err != nil {
		return nil, fmt.Errorf("core: refitting best configuration: %w", err)
	}
	out := &Outcome{
		Search:     res,
		Model:      model,
		SetupTime:  setup,
		SearchTime: res.Elapsed,
	}
	if opts.UseF1 && train.Kind == dataset.Classification {
		out.TrainScore = model.ScoreF1(train)
		out.TestScore = model.ScoreF1(test)
	} else {
		out.TrainScore = model.Score(train)
		out.TestScore = model.Score(test)
	}
	out.TotalTime = time.Since(totalStart)
	return out, nil
}

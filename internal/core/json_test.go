package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestOutcomeJSON(t *testing.T) {
	train, test := smallData(t)
	out, err := Run(train, test, Options{
		Method:     SHA,
		Space:      smallSpace(t),
		Base:       fastBase(),
		MaxConfigs: 4,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := out.JSON()
	if j.Method != "sha" {
		t.Errorf("method %q", j.Method)
	}
	if j.BestID == "" || len(j.Best) == 0 {
		t.Error("best config missing")
	}
	if _, ok := j.Best["activation"]; !ok {
		t.Error("best config missing activation dimension")
	}
	if j.TestScore != out.TestScore {
		t.Error("test score mismatch")
	}
	if j.Evaluations != out.Search.Evaluations {
		t.Error("evaluation count mismatch")
	}
	if j.TotalBudget <= 0 {
		t.Error("no budget recorded")
	}
	if len(j.Rounds) == 0 {
		t.Error("no rounds recorded")
	}

	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back OutcomeJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.BestID != j.BestID || back.TestScore != j.TestScore {
		t.Error("JSON round trip lost data")
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"enhancedbhpo/internal/trace"
)

// OutcomeJSON is the machine-readable form of an optimization outcome, for
// pipelines that consume bhpo's results (dashboards, sweep drivers).
type OutcomeJSON struct {
	Method      string             `json:"method"`
	Best        map[string]any     `json:"best"`
	BestID      string             `json:"best_id"`
	BestScore   float64            `json:"best_cv_score"`
	TrainScore  float64            `json:"train_score"`
	TestScore   float64            `json:"test_score"`
	Evaluations int                `json:"evaluations"`
	TotalBudget int                `json:"total_instance_budget"`
	SetupSec    float64            `json:"setup_seconds"`
	SearchSec   float64            `json:"search_seconds"`
	TotalSec    float64            `json:"total_seconds"`
	Rounds      []OutcomeRoundJSON `json:"rounds"`
}

// OutcomeRoundJSON summarizes one halving round.
type OutcomeRoundJSON struct {
	Round       int     `json:"round"`
	Evaluations int     `json:"evaluations"`
	Budget      int     `json:"budget"`
	BestScore   float64 `json:"best_score"`
	MeanScore   float64 `json:"mean_score"`
}

// JSON converts the outcome for serialization.
func (o *Outcome) JSON() OutcomeJSON {
	best := map[string]any{}
	cfg := o.Search.Best
	if sp := cfg.Space(); sp != nil {
		for _, dim := range sp.Dims {
			best[dim.Name] = cfg.Value(dim.Name)
		}
	}
	out := OutcomeJSON{
		Method:      o.Search.Method,
		Best:        best,
		BestID:      cfg.ID(),
		BestScore:   o.Search.BestScore,
		TrainScore:  o.TrainScore,
		TestScore:   o.TestScore,
		Evaluations: o.Search.Evaluations,
		TotalBudget: trace.TotalBudget(o.Search.Trials),
		SetupSec:    seconds(o.SetupTime),
		SearchSec:   seconds(o.SearchTime),
		TotalSec:    seconds(o.TotalTime),
	}
	for _, rs := range trace.ByRound(o.Search.Trials) {
		out.Rounds = append(out.Rounds, OutcomeRoundJSON{
			Round:       rs.Round,
			Evaluations: rs.Evaluations,
			Budget:      rs.Budget,
			BestScore:   rs.BestScore,
			MeanScore:   rs.MeanScore,
		})
	}
	return out
}

// WriteJSON writes the outcome as indented JSON.
func (o *Outcome) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o.JSON()); err != nil {
		return fmt.Errorf("core: encoding outcome: %w", err)
	}
	return nil
}

func seconds(d time.Duration) float64 { return d.Seconds() }

package core

import (
	"strings"
	"testing"

	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/search"
)

func fastBase() nn.Config {
	base := nn.DefaultConfig()
	base.MaxIter = 12
	base.LearningRateInit = 0.02
	base.HiddenLayerSizes = []int{6}
	return base
}

func smallData(t *testing.T) (train, test *dataset.Dataset) {
	t.Helper()
	spec, err := dataset.SpecByName("australian")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.4)
	train, test, err = dataset.Synthesize(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	dataset.Standardize(train, test)
	return train, test
}

func smallSpace(t *testing.T) *search.Space {
	t.Helper()
	s, err := search.TableIIISpace(2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSHAVanillaAndEnhanced(t *testing.T) {
	train, test := smallData(t)
	space := smallSpace(t)
	for _, variant := range []Variant{Vanilla, Enhanced} {
		out, err := Run(train, test, Options{
			Method:     SHA,
			Variant:    variant,
			Space:      space,
			Base:       fastBase(),
			MaxConfigs: 6,
			Seed:       1,
		})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if out.TestScore < 0.55 {
			t.Errorf("%v: test accuracy %v too low", variant, out.TestScore)
		}
		if out.Search.Best.ID() == "" {
			t.Errorf("%v: no best config", variant)
		}
		if out.Model == nil {
			t.Errorf("%v: no final model", variant)
		}
		if variant == Enhanced && out.SetupTime <= 0 {
			t.Errorf("enhanced run recorded no setup time")
		}
		if variant == Vanilla && out.SetupTime != 0 {
			t.Errorf("vanilla run recorded setup time %v", out.SetupTime)
		}
	}
}

func TestRunAllMethods(t *testing.T) {
	train, test := smallData(t)
	space := smallSpace(t)
	for _, method := range []Method{Random, SHA, Hyperband, BOHB, ASHA, PASHA, DEHB, SMAC, TPE, Grid} {
		opts := Options{
			Method:     method,
			Space:      space,
			Base:       fastBase(),
			MaxConfigs: 4,
			Seed:       2,
		}
		opts.Random.N = 3
		opts.HB.MaxBrackets = 2
		opts.HB.MinBudget = 40
		opts.BOHB.Hyperband.MaxBrackets = 2
		opts.BOHB.Hyperband.MinBudget = 40
		opts.ASHA.MaxConfigs = 4
		opts.ASHA.Workers = 2
		opts.PASHA.MaxConfigs = 4
		opts.PASHA.MinBudget = 40
		opts.DEHB.Hyperband.MaxBrackets = 2
		opts.DEHB.Hyperband.MinBudget = 40
		opts.SMAC.N = 4
		opts.TPE.N = 4
		opts.Grid.MaxConfigs = 4
		out, err := Run(train, test, opts)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if out.Search.Method != method.String() {
			t.Errorf("%v: method recorded as %q", method, out.Search.Method)
		}
		if out.TestScore <= 0 {
			t.Errorf("%v: test score %v", method, out.TestScore)
		}
	}
}

func TestRunValidation(t *testing.T) {
	train, test := smallData(t)
	if _, err := Run(train, test, Options{}); err == nil {
		t.Error("nil space accepted")
	}
	bad := train.Select([]int{0, 1, 2})
	bad.Class = bad.Class[:1]
	if _, err := Run(bad, test, Options{Space: smallSpace(t)}); err == nil {
		t.Error("invalid train accepted")
	}
}

func TestRunRegression(t *testing.T) {
	spec, err := dataset.SpecByName("kc-house")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.15)
	train, test, err := dataset.Synthesize(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	dataset.Standardize(train, test)
	base := fastBase()
	base.Activation = nn.Tanh
	out, err := Run(train, test, Options{
		Method:     SHA,
		Variant:    Enhanced,
		Space:      smallSpace(t),
		Base:       base,
		MaxConfigs: 4,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.TestScore < 0.2 {
		t.Errorf("regression R2 %v too low", out.TestScore)
	}
}

func TestRunUseF1(t *testing.T) {
	train, test := smallData(t)
	out, err := Run(train, test, Options{
		Method:     SHA,
		Space:      smallSpace(t),
		Base:       fastBase(),
		MaxConfigs: 4,
		UseF1:      true,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.TestScore < 0 || out.TestScore > 1 {
		t.Errorf("F1 %v out of range", out.TestScore)
	}
}

func TestParseMethod(t *testing.T) {
	for _, s := range []string{"random", "sha", "hyperband", "bohb", "asha", "pasha", "dehb", "smac", "tpe", "grid"} {
		m, err := ParseMethod(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != s {
			t.Errorf("round-trip %q -> %q", s, m.String())
		}
	}
	if m, err := ParseMethod("hb"); err != nil || m != Hyperband {
		t.Error("hb alias broken")
	}
	if _, err := ParseMethod("sgd"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestVariantString(t *testing.T) {
	if Vanilla.String() != "vanilla" || Enhanced.String() != "enhanced" {
		t.Error("variant names wrong")
	}
}

func TestRunDeterministicBest(t *testing.T) {
	train, test := smallData(t)
	space := smallSpace(t)
	opts := Options{Method: SHA, Space: space, Base: fastBase(), MaxConfigs: 4, Seed: 6}
	o1, err := Run(train, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Run(train, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Search.Best.ID() != o2.Search.Best.ID() {
		t.Fatal("same seed picked different configs")
	}
	if o1.TestScore != o2.TestScore {
		t.Fatal("same seed produced different test scores")
	}
}

// TestMethodEnumMatchesRegistry requires the core Method enum and the hpo
// registry to cover exactly the same method set: every enum value resolves
// to a registered method, every registered name (and alias) parses, and
// nothing else does.
func TestMethodEnumMatchesRegistry(t *testing.T) {
	registered := hpo.MethodNames()
	fromEnum := map[string]bool{}
	for m := Method(0); ; m++ {
		name := m.String()
		if strings.HasPrefix(name, "Method(") {
			break
		}
		fromEnum[name] = true
		if _, ok := hpo.LookupMethod(name); !ok {
			t.Errorf("enum method %s has no registry entry", name)
		}
		if parsed, err := ParseMethod(name); err != nil || parsed != m {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", name, parsed, err, m)
		}
	}
	if len(fromEnum) != len(registered) {
		t.Errorf("enum covers %d methods, registry has %d (%v)", len(fromEnum), len(registered), registered)
	}
	for _, name := range registered {
		if !fromEnum[name] {
			t.Errorf("registered method %q missing from the core enum", name)
		}
	}
	// Aliases parse to the canonical method.
	for alias, want := range map[string]Method{"hb": Hyperband, "optuna": TPE} {
		if m, err := ParseMethod(alias); err != nil || m != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", alias, m, err, want)
		}
	}
}

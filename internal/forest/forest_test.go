package forest

import (
	"math"
	"testing"
	"testing/quick"

	"enhancedbhpo/internal/rng"
)

// makeRegression builds y = 3*x0 - 2*x1 + noise.
func makeRegression(n int, noise float64, seed uint64) (x [][]float64, y []float64) {
	r := rng.New(seed)
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{r.Norm(), r.Norm(), r.Norm()}
		x[i] = row
		y[i] = 3*row[0] - 2*row[1] + r.Norm()*noise
	}
	return x, y
}

func TestTrainPredictLearnsSignal(t *testing.T) {
	x, y := makeRegression(400, 0.1, 1)
	f, err := Train(x, y, Options{Trees: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 30 {
		t.Fatalf("trees = %d", f.Trees())
	}
	// R² on held-out data must beat a mean predictor decisively.
	xt, yt := makeRegression(200, 0.1, 3)
	var ssRes, ssTot, mean float64
	for _, v := range yt {
		mean += v
	}
	mean /= float64(len(yt))
	for i, row := range xt {
		pred, _ := f.Predict(row)
		d := yt[i] - pred
		ssRes += d * d
		dm := yt[i] - mean
		ssTot += dm * dm
	}
	r2 := 1 - ssRes/ssTot
	if r2 < 0.6 {
		t.Fatalf("forest R² = %v", r2)
	}
}

func TestPredictVarianceNonNegative(t *testing.T) {
	x, y := makeRegression(100, 0.5, 4)
	f, err := Train(x, y, Options{Trees: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := func(a, b, c float64) bool {
		row := []float64{math.Mod(a, 10), math.Mod(b, 10), math.Mod(c, 10)}
		for _, v := range row {
			if math.IsNaN(v) {
				return true
			}
		}
		_, variance := f.Predict(row)
		return variance >= 0
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConstantTargets(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	f, err := Train(x, y, Options{Trees: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := f.Predict([]float64{2.5})
	if mean != 7 {
		t.Fatalf("mean = %v", mean)
	}
	if variance != 0 {
		t.Fatalf("variance = %v", variance)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, Options{}); err == nil {
		t.Error("zero-width rows accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestPredictShapePanics(t *testing.T) {
	x, y := makeRegression(50, 0.1, 6)
	f, err := Train(x, y, Options{Trees: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-width row accepted")
		}
	}()
	f.Predict([]float64{1})
}

func TestDeterministicWithSeed(t *testing.T) {
	x, y := makeRegression(120, 0.2, 8)
	f1, err := Train(x, y, Options{Trees: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(x, y, Options{Trees: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, -0.2, 1.1}
	m1, v1 := f1.Predict(probe)
	m2, v2 := f2.Predict(probe)
	if m1 != m2 || v1 != v2 {
		t.Fatal("same seed produced different forests")
	}
}

func TestMinLeafRespected(t *testing.T) {
	// With MinLeaf = n the tree cannot split: prediction is the bootstrap
	// mean, and per-tree depth is 0.
	x, y := makeRegression(40, 0.1, 10)
	f, err := Train(x, y, Options{Trees: 4, MinLeaf: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.trees {
		if !tr.leaf {
			t.Fatal("tree split despite MinLeaf = n")
		}
	}
}

func TestVarianceReflectsDisagreement(t *testing.T) {
	// A step function: trees agree deep inside each plateau and disagree
	// near the step, so variance should be higher near the boundary.
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	r := rng.New(12)
	for i := 0; i < n; i++ {
		v := r.Float64()*2 - 1
		x[i] = []float64{v}
		if v > 0 {
			y[i] = 1
		}
	}
	f, err := Train(x, y, Options{Trees: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	_, varBoundary := f.Predict([]float64{0.001})
	_, varPlateau := f.Predict([]float64{0.9})
	if varBoundary < varPlateau {
		t.Fatalf("boundary variance %v < plateau variance %v", varBoundary, varPlateau)
	}
}

// Package forest implements a random-forest regressor: bootstrap-sampled
// CART trees with per-split random feature subsets, predicting mean and
// cross-tree variance. It is the surrogate model behind the SMAC3-style
// Bayesian optimizer (the paper compares against SMAC3 in §IV-B, whose
// defining trait is exactly a random-forest surrogate instead of a
// Gaussian process).
package forest

import (
	"fmt"
	"math"
	"sort"

	"enhancedbhpo/internal/rng"
)

// Options configure forest training.
type Options struct {
	// Trees is the ensemble size. 0 selects 24.
	Trees int
	// MaxDepth bounds tree depth. 0 selects 12.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf. 0 selects 2.
	MinLeaf int
	// FeatureFraction is the share of features considered per split.
	// 0 selects 1/3 (a common regression default).
	FeatureFraction float64
	// Seed drives bootstrapping and feature subsetting.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Trees <= 0 {
		o.Trees = 24
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 12
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
	if o.FeatureFraction <= 0 || o.FeatureFraction > 1 {
		o.FeatureFraction = 1.0 / 3
	}
	return o
}

// Forest is a trained ensemble.
type Forest struct {
	trees    []*node
	features int
}

// node is one CART tree node; leaves have value set and children nil.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	value     float64
	leaf      bool
}

// Train fits a forest on rows x (each of equal length) and targets y.
func Train(x [][]float64, y []float64, opts Options) (*Forest, error) {
	opts = opts.withDefaults()
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("forest: %d rows vs %d targets", n, len(y))
	}
	features := len(x[0])
	if features == 0 {
		return nil, fmt.Errorf("forest: zero-width rows")
	}
	for i, row := range x {
		if len(row) != features {
			return nil, fmt.Errorf("forest: row %d has %d features, want %d", i, len(row), features)
		}
	}
	root := rng.New(opts.Seed ^ 0xf0537)
	f := &Forest{features: features}
	mtry := int(math.Ceil(opts.FeatureFraction * float64(features)))
	if mtry < 1 {
		mtry = 1
	}
	for t := 0; t < opts.Trees; t++ {
		r := root.Split(uint64(t) + 1)
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		f.trees = append(f.trees, buildTree(x, y, idx, opts, mtry, 0, r))
	}
	return f, nil
}

// buildTree grows one CART regression tree on the index subset.
func buildTree(x [][]float64, y []float64, idx []int, opts Options, mtry, depth int, r *rng.RNG) *node {
	mean := meanOf(y, idx)
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || pureTargets(y, idx) {
		return &node{leaf: true, value: mean}
	}
	bestFeature, bestThreshold, bestGain := -1, 0.0, 0.0
	parentSSE := sseOf(y, idx, mean)
	features := r.Sample(len(x[0]), mtry)
	for _, fi := range features {
		threshold, gain := bestSplit(x, y, idx, fi, opts.MinLeaf, parentSSE)
		if gain > bestGain {
			bestFeature, bestThreshold, bestGain = fi, threshold, gain
		}
	}
	if bestFeature < 0 {
		return &node{leaf: true, value: mean}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < opts.MinLeaf || len(right) < opts.MinLeaf {
		return &node{leaf: true, value: mean}
	}
	return &node{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      buildTree(x, y, left, opts, mtry, depth+1, r),
		right:     buildTree(x, y, right, opts, mtry, depth+1, r),
	}
}

// bestSplit finds the threshold on feature fi with the largest SSE
// reduction, respecting the leaf-size floor.
func bestSplit(x [][]float64, y []float64, idx []int, fi, minLeaf int, parentSSE float64) (threshold, gain float64) {
	vals := make([]int, len(idx))
	copy(vals, idx)
	sort.Slice(vals, func(a, b int) bool { return x[vals[a]][fi] < x[vals[b]][fi] })
	n := len(vals)
	// Prefix sums for O(n) split evaluation after the sort.
	var sumL, sqL float64
	var sumR, sqR float64
	for _, i := range vals {
		sumR += y[i]
		sqR += y[i] * y[i]
	}
	best := -1.0
	var bestT float64
	for pos := 0; pos < n-1; pos++ {
		i := vals[pos]
		sumL += y[i]
		sqL += y[i] * y[i]
		sumR -= y[i]
		sqR -= y[i] * y[i]
		nl, nr := pos+1, n-pos-1
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		// Skip ties: cannot split between equal feature values.
		if x[vals[pos]][fi] == x[vals[pos+1]][fi] {
			continue
		}
		sseL := sqL - sumL*sumL/float64(nl)
		sseR := sqR - sumR*sumR/float64(nr)
		g := parentSSE - sseL - sseR
		if g > best {
			best = g
			bestT = (x[vals[pos]][fi] + x[vals[pos+1]][fi]) / 2
		}
	}
	if best <= 0 {
		return 0, 0
	}
	return bestT, best
}

// Predict returns the ensemble mean and cross-tree variance for one row.
// The variance is SMAC's uncertainty signal for the acquisition function.
func (f *Forest) Predict(row []float64) (mean, variance float64) {
	if len(row) != f.features {
		panic(fmt.Sprintf("forest: row has %d features, model expects %d", len(row), f.features))
	}
	var sum, sq float64
	for _, t := range f.trees {
		v := t.eval(row)
		sum += v
		sq += v * v
	}
	n := float64(len(f.trees))
	mean = sum / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

func (nd *node) eval(row []float64) float64 {
	for !nd.leaf {
		if row[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.value
}

func meanOf(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseOf(y []float64, idx []int, mean float64) float64 {
	var s float64
	for _, i := range idx {
		d := y[i] - mean
		s += d * d
	}
	return s
}

func pureTargets(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

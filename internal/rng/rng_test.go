package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 matched %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	s1 := parent.Split(1)
	s2 := parent.Split(2)
	s1again := parent.Split(1)
	if s1.Uint64() != s1again.Uint64() {
		t.Fatal("Split(1) not deterministic")
	}
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("Split(1) and Split(2) coincide suspiciously")
	}
	// Splitting must not advance the parent.
	p1 := New(7)
	_ = p1.Split(3)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/7) > n/7*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from uniform", b, c)
		}
	}
	assertPanics(t, "Intn(0)", func() { r.Intn(0) })
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleDistinctInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for _, k := range []int{0, 1, 3, 10, 50, 100} {
			s := r.Sample(100, k)
			if len(s) != k {
				return false
			}
			seen := map[int]bool{}
			for _, v := range s {
				if v < 0 || v >= 100 || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	r := New(1)
	assertPanics(t, "Sample k>n", func() { r.Sample(3, 4) })
	assertPanics(t, "Sample k<0", func() { r.Sample(3, -1) })
}

func TestSampleCoversAllElements(t *testing.T) {
	// Floyd path (k*4 < n) must be able to return every index.
	r := New(9)
	hit := make([]bool, 40)
	for i := 0; i < 3000; i++ {
		for _, v := range r.Sample(40, 5) {
			hit[v] = true
		}
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d never sampled", i)
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(8)
	counts := [3]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[r.Choice([]float64{1, 2, 3})]++
	}
	total := float64(n)
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / total
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("weight %d: got %v want %v", i, got, want)
		}
	}
	assertPanics(t, "negative weight", func() { r.Choice([]float64{1, -1}) })
	assertPanics(t, "all zero", func() { r.Choice([]float64{0, 0}) })
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(10)
	s := []int{1, 2, 2, 3, 5, 5, 5}
	orig := append([]int(nil), s...)
	r.Shuffle(s)
	counts := map[int]int{}
	for _, v := range s {
		counts[v]++
	}
	for _, v := range orig {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("element %d count off by %d", k, c)
		}
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestFingerprint(t *testing.T) {
	a, b := New(7), New(7)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identically seeded generators have different fingerprints")
	}
	if New(7).Split(3).Fingerprint() != New(7).Split(3).Fingerprint() {
		t.Fatal("identical split chains have different fingerprints")
	}
	// Fingerprint must not advance the stream.
	before := a.Fingerprint()
	_ = a.Fingerprint()
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fingerprint advanced the generator")
	}
	_ = before
	// Distinct seeds and distinct split tags should (essentially always)
	// give distinct fingerprints.
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 100; seed++ {
		fp := New(seed).Fingerprint()
		if seen[fp] {
			t.Fatalf("fingerprint collision at seed %d", seed)
		}
		seen[fp] = true
	}
	for tag := uint64(0); tag < 100; tag++ {
		fp := New(1).Split(tag).Fingerprint()
		if seen[fp] {
			t.Fatalf("fingerprint collision at split tag %d", tag)
		}
		seen[fp] = true
	}
	// A generator that has advanced has a different state fingerprint.
	c := New(7)
	c.Uint64()
	if c.Fingerprint() == New(7).Fingerprint() {
		t.Fatal("advanced generator kept the same fingerprint")
	}
}

// Package rng provides deterministic, splittable pseudo-random number
// generation for the whole repository. Every experiment in the paper is
// repeated over seeds; rng makes those runs reproducible by deriving
// independent streams from a root seed with splitmix64, so that adding a new
// consumer of randomness never perturbs the draws of existing ones.
package rng

import (
	"math"
)

// splitmix64 advances the state and returns the next 64-bit output.
// It is the standard seeding mixer from Steele et al. and gives
// well-distributed streams even for sequential seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a small deterministic generator (xoshiro256** core) with
// convenience draws used across the repository.
type RNG struct {
	s [4]uint64
	// cached spare normal for the polar method
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from r and the given stream tag.
// Streams with distinct tags are statistically independent, and splitting
// does not advance r itself, so the parent's sequence is unaffected.
func (r *RNG) Split(tag uint64) *RNG {
	mix := r.s[0] ^ r.s[3] ^ (tag * 0xd1342543de82ef95)
	return New(mix)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Fingerprint returns a 64-bit digest of the generator's current state
// without advancing it. Two generators at the same state (e.g. produced by
// identical New/Split chains) share a fingerprint, so it identifies the
// random stream an evaluation will consume — the basis of cache keys over
// deterministic computations.
func (r *RNG) Fingerprint() uint64 {
	h := r.s[0]
	h = splitmix64(&h) ^ rotl(r.s[1], 13)
	h = splitmix64(&h) ^ rotl(r.s[2], 29)
	h = splitmix64(&h) ^ rotl(r.s[3], 43)
	return splitmix64(&h)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill
	// here; modulo bias is negligible for the n used in this repo, but we
	// still reject to keep draws exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Norm returns a standard normal draw (Marsaglia polar method).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormScaled returns mean + sigma*Norm().
func (r *RNG) NormScaled(mean, sigma float64) float64 {
	return mean + sigma*r.Norm()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes s in place (Fisher–Yates).
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	if k == 0 {
		return nil
	}
	// For small k relative to n use Floyd's algorithm to avoid a full perm.
	if k*4 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for j := n - k; j < n; j++ {
			t := r.Intn(j + 1)
			if _, ok := seen[t]; ok {
				t = j
			}
			seen[t] = struct{}{}
			out = append(out, t)
		}
		r.Shuffle(out)
		return out
	}
	p := r.Perm(n)
	return p[:k]
}

// Choice returns one uniformly chosen element index weighted by w.
// Weights must be non-negative and not all zero.
func (r *RNG) Choice(w []float64) int {
	var total float64
	for _, v := range w {
		if v < 0 {
			panic("rng: negative weight")
		}
		total += v
	}
	if total <= 0 {
		panic("rng: all weights zero")
	}
	x := r.Float64() * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Package events is bhpod's streaming-telemetry layer: a per-job
// broadcast hub that fans typed, sequence-numbered job events out to any
// number of subscribers. The runner publishes what the optimizer is doing
// as it happens — incumbent-curve points, rung promotions, evaluation
// retries, deadline abandonments, failure-budget charges, lifecycle
// transitions — and the HTTP layer re-exposes the feed as server-sent
// events, replacing status polling with push delivery.
//
// Every event carries a per-job monotonic sequence number assigned at
// publish time. The hub retains each job's full event history in memory
// (jobs are bounded by their trial counts, and the manager already keeps
// the trial list for the same lifetime), so a subscriber can join late or
// reconnect and resume from any sequence number with exactly-once,
// in-order delivery. Per-subscriber buffers are bounded: a consumer that
// falls behind has events dropped from its channel (never from the
// history), the drops are counted, and the consumer recovers by reading
// the history from its last seen sequence.
//
// An optional Sink receives every event synchronously in publish order —
// the hook the durable trace store hangs off, so what is on disk is
// always a prefix of what subscribers saw.
package events

import (
	"time"

	"enhancedbhpo/internal/trace"
)

// Type discriminates job events.
type Type string

const (
	// TypeCurvePoint: the job's incumbent curve grew by one point (one
	// evaluation finished). Point carries the new tail of the curve.
	TypeCurvePoint Type = "curve_point"
	// TypeRung: the optimizer promoted into a new halving round/rung.
	// Round is the new rung, Budget its per-configuration budget.
	TypeRung Type = "rung"
	// TypeRetry: an evaluation attempt failed and is being retried.
	// Attempt is the 1-based attempt that failed, Error what it said.
	TypeRetry Type = "retry"
	// TypeDeadline: an evaluation ran past the watchdog deadline and was
	// abandoned (slot released, result discarded).
	TypeDeadline Type = "deadline"
	// TypeFailure: a definitively failed trial was charged to the job's
	// failure budget. Failures is the total charged so far.
	TypeFailure Type = "failure_budget"
	// TypeStatus: a lifecycle transition (running, done, failed,
	// cancelled). Terminal marks the final transition; after it the
	// job's feed is closed.
	TypeStatus Type = "status"
	// TypePreempted: the weighted-fair scheduler reclaimed the job's
	// slot at a rung boundary; the job is back in the queued state with
	// its completed trials checkpointed. Round is the highest rung
	// reached so far.
	TypePreempted Type = "preempted"
	// TypeResumed: a previously preempted (or crash-recovered) job got
	// a slot back and is running again; its checkpointed trial prefix
	// replays deterministically before new trials appear.
	TypeResumed Type = "resumed"
)

// Event is one job telemetry record. Only the fields relevant to the
// event's Type are set; the rest stay at their zero values and are
// omitted from the JSON wire form. Curve points reuse the trace
// package's bit-exact Point serialization, so curves reassembled from an
// event stream round-trip byte-identically.
type Event struct {
	// Seq is the per-job monotonic sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// Type says what happened.
	Type Type `json:"type"`
	// Time is when the event was published.
	Time time.Time `json:"time"`
	// JobID is the job the event belongs to.
	JobID string `json:"job"`

	// Point is the new incumbent-curve point (curve_point events).
	Point *trace.Point `json:"point,omitempty"`
	// Round is the newly entered rung (rung events; always ≥ 1 — the
	// initial rung 0 is not a promotion).
	Round int `json:"round,omitempty"`
	// Budget is the per-configuration budget of the new rung (rung
	// events) or of the affected evaluation (deadline events).
	Budget int `json:"budget,omitempty"`
	// Attempt is the 1-based evaluation attempt that failed (retry).
	Attempt int `json:"attempt,omitempty"`
	// Failures is the job's failure-budget charge count (failure_budget).
	Failures int `json:"failures,omitempty"`
	// Status is the new lifecycle state (status events).
	Status string `json:"status,omitempty"`
	// Reason qualifies a cancelled status (status events).
	Reason string `json:"reason,omitempty"`
	// Error carries the triggering error text (retry, failure_budget,
	// failed status).
	Error string `json:"error,omitempty"`
	// Terminal marks the job's final status transition.
	Terminal bool `json:"terminal,omitempty"`
}

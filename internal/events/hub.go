package events

import (
	"sync"
	"sync/atomic"
)

// Options tunes a Hub.
type Options struct {
	// SubscriberBuffer is each subscription's channel capacity. A
	// subscriber whose buffer is full has events dropped from its
	// channel (counted, never removed from history) and recovers via
	// Since. 0 selects 256.
	SubscriberBuffer int
	// Sink, when non-nil, receives every published event synchronously
	// in publish order, before any subscriber sees it. It is the durable
	// trace store's hook; it must not call back into the hub.
	Sink func(Event)
}

// Stats is the hub's counter snapshot, feeding the service /metrics.
type Stats struct {
	// Subscribers is the number of currently open subscriptions.
	Subscribers int64
	// Published counts events published since the hub was created
	// (primed history is not counted — it was published in a previous
	// process life).
	Published int64
	// Dropped counts events dropped from slow consumers' buffers.
	Dropped int64
}

// Hub is a per-job broadcast switchboard: Publish assigns the next
// sequence number for the job, retains the event, hands it to the sink,
// and fans it out to the job's subscribers. Safe for concurrent use.
type Hub struct {
	opts Options

	subscribers atomic.Int64
	published   atomic.Int64
	dropped     atomic.Int64

	mu    sync.Mutex
	feeds map[string]*feed
}

// feed is one job's event log plus its live subscribers.
type feed struct {
	mu      sync.Mutex
	history []Event
	nextSeq uint64
	done    bool
	subs    map[*Subscription]struct{}
}

// Subscription is one consumer's handle on a job feed. Events arrive on
// C in sequence order; the channel closes after the job's terminal event
// has been delivered (or when Close is called). If the subscriber lags
// more than the buffer, intervening events are dropped from C — detect
// the sequence gap and backfill with Hub.Since.
type Subscription struct {
	// C delivers the feed's events.
	C <-chan Event

	hub     *Hub
	feed    *feed
	ch      chan Event
	dropped atomic.Int64
	closed  bool // guarded by feed.mu
}

// NewHub returns an empty hub.
func NewHub(opts Options) *Hub {
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = 256
	}
	return &Hub{opts: opts, feeds: map[string]*feed{}}
}

// getFeed returns (creating if needed) the job's feed.
func (h *Hub) getFeed(jobID string) *feed {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.feeds[jobID]
	if !ok {
		f = &feed{nextSeq: 1, subs: map[*Subscription]struct{}{}}
		h.feeds[jobID] = f
	}
	return f
}

// Publish stamps the event with the job's next sequence number and the
// job ID, retains it, hands it to the sink, and fans it out. A terminal
// event closes the feed: subscribers' channels are closed after it is
// delivered, and later publishes for the job are no-ops (a feed never
// reopens). Returns the stamped event; a dropped (post-terminal) publish
// returns Seq 0.
func (h *Hub) Publish(jobID string, ev Event) Event {
	f := h.getFeed(jobID)
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		ev.Seq = 0
		return ev
	}
	ev.JobID = jobID
	ev.Seq = f.nextSeq
	f.nextSeq++
	f.history = append(f.history, ev)
	if h.opts.Sink != nil {
		h.opts.Sink(ev)
	}
	for sub := range f.subs {
		select {
		case sub.ch <- ev:
		default:
			// Slow consumer: the event stays in history, the subscriber
			// sees a sequence gap and backfills via Since.
			sub.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	if ev.Terminal {
		f.done = true
		for sub := range f.subs {
			h.closeSubLocked(f, sub)
		}
	}
	f.mu.Unlock()
	h.published.Add(1)
	return ev
}

// Prime preloads a job's event history — read back from the durable
// trace store after a restart — so sequence numbers continue where the
// previous process stopped and subscribers can resume across restarts.
// It only applies to an untouched feed; a feed that already has events
// is left alone. Primed events do not count as published and do not
// reach the sink (they are already durable).
func (h *Hub) Prime(jobID string, history []Event) {
	if len(history) == 0 {
		return
	}
	f := h.getFeed(jobID)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.history) > 0 || f.done {
		return
	}
	f.history = append(f.history, history...)
	f.nextSeq = history[len(history)-1].Seq + 1
	if history[len(history)-1].Terminal {
		f.done = true
	}
}

// Subscribe registers a consumer on the job's feed and returns the
// backlog of events with Seq > afterSeq. Registration and the backlog
// snapshot are atomic, so the backlog plus the channel delivers every
// event exactly once in order. Subscribing to a finished job returns the
// remaining history and an already-closed channel.
func (h *Hub) Subscribe(jobID string, afterSeq uint64) (*Subscription, []Event) {
	f := h.getFeed(jobID)
	sub := &Subscription{hub: h, feed: f, ch: make(chan Event, h.opts.SubscriberBuffer)}
	sub.C = sub.ch
	f.mu.Lock()
	defer f.mu.Unlock()
	backlog := eventsAfter(f.history, afterSeq)
	if f.done {
		sub.closed = true
		close(sub.ch)
		return sub, backlog
	}
	f.subs[sub] = struct{}{}
	h.subscribers.Add(1)
	return sub, backlog
}

// closeSubLocked closes one subscription under its feed's lock.
func (h *Hub) closeSubLocked(f *feed, sub *Subscription) {
	if sub.closed {
		return
	}
	sub.closed = true
	delete(f.subs, sub)
	close(sub.ch)
	h.subscribers.Add(-1)
}

// Close detaches the subscription. Idempotent, and safe to call after
// the feed already closed the channel.
func (s *Subscription) Close() {
	s.feed.mu.Lock()
	s.hub.closeSubLocked(s.feed, s)
	s.feed.mu.Unlock()
}

// Dropped reports how many events were dropped from this subscription's
// buffer because the consumer lagged.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Since returns a copy of the job's retained events with Seq > afterSeq
// — the backfill path for consumers that detected a gap, and the data
// behind the ?since=N incremental poll and the /trace endpoint.
func (h *Hub) Since(jobID string, afterSeq uint64) []Event {
	h.mu.Lock()
	f, ok := h.feeds[jobID]
	h.mu.Unlock()
	if !ok {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return eventsAfter(f.history, afterSeq)
}

// LastSeq returns the job's highest published sequence number (0 when
// the job has no events).
func (h *Hub) LastSeq(jobID string) uint64 {
	h.mu.Lock()
	f, ok := h.feeds[jobID]
	h.mu.Unlock()
	if !ok {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextSeq - 1
}

// Done reports whether the job's feed saw its terminal event.
func (h *Hub) Done(jobID string) bool {
	h.mu.Lock()
	f, ok := h.feeds[jobID]
	h.mu.Unlock()
	if !ok {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Stats snapshots the hub counters.
func (h *Hub) Stats() Stats {
	return Stats{
		Subscribers: h.subscribers.Load(),
		Published:   h.published.Load(),
		Dropped:     h.dropped.Load(),
	}
}

// eventsAfter copies the tail of history with Seq > afterSeq. History is
// seq-ordered, so a binary search finds the cut.
func eventsAfter(history []Event, afterSeq uint64) []Event {
	lo, hi := 0, len(history)
	for lo < hi {
		mid := (lo + hi) / 2
		if history[mid].Seq <= afterSeq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(history) {
		return nil
	}
	out := make([]Event, len(history)-lo)
	copy(out, history[lo:])
	return out
}

package events

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"enhancedbhpo/internal/trace"
)

// collect drains backlog + channel until the channel closes or n events
// arrived, returning them in arrival order.
func collect(sub *Subscription, backlog []Event, n int, timeout time.Duration) []Event {
	out := append([]Event{}, backlog...)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			return out
		}
	}
	return out
}

func curveEvent(i int) Event {
	return Event{Type: TypeCurvePoint, Time: time.Unix(int64(i), 0), Point: &trace.Point{Evaluations: i, BestScore: float64(i)}}
}

// TestPublishAssignsMonotonicSeqs: sequence numbers are per-job,
// monotonic from 1, and independent across jobs.
func TestPublishAssignsMonotonicSeqs(t *testing.T) {
	h := NewHub(Options{})
	for i := 1; i <= 3; i++ {
		ev := h.Publish("job-1", curveEvent(i))
		if ev.Seq != uint64(i) {
			t.Fatalf("job-1 event %d got seq %d", i, ev.Seq)
		}
		if ev.JobID != "job-1" {
			t.Fatalf("publish did not stamp job ID: %q", ev.JobID)
		}
	}
	if ev := h.Publish("job-2", curveEvent(1)); ev.Seq != 1 {
		t.Fatalf("job-2 first event got seq %d, want 1", ev.Seq)
	}
	if got := h.LastSeq("job-1"); got != 3 {
		t.Fatalf("LastSeq(job-1) = %d, want 3", got)
	}
	if got := h.LastSeq("absent"); got != 0 {
		t.Fatalf("LastSeq(absent) = %d, want 0", got)
	}
	if got := h.Stats().Published; got != 4 {
		t.Fatalf("Published = %d, want 4", got)
	}
}

// TestSubscribeBacklogAndLive: a subscriber joining mid-stream gets the
// backlog past its resume point atomically, then live events, with no
// gap and no duplicate at the hand-off.
func TestSubscribeBacklogAndLive(t *testing.T) {
	h := NewHub(Options{})
	for i := 1; i <= 5; i++ {
		h.Publish("j", curveEvent(i))
	}
	sub, backlog := h.Subscribe("j", 2)
	defer sub.Close()
	if len(backlog) != 3 || backlog[0].Seq != 3 || backlog[2].Seq != 5 {
		t.Fatalf("backlog after seq 2 = %+v, want seqs 3..5", backlog)
	}
	h.Publish("j", curveEvent(6))
	h.Publish("j", Event{Type: TypeStatus, Status: "done", Terminal: true})
	got := collect(sub, backlog, 5, 5*time.Second)
	for i, ev := range got {
		if ev.Seq != uint64(i+3) {
			t.Fatalf("event %d has seq %d, want %d (events: %+v)", i, ev.Seq, i+3, got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("got %d events, want 5 (3 backlog + 2 live)", len(got))
	}
	// Terminal closed the channel.
	if _, ok := <-sub.C; ok {
		t.Fatal("channel still open after terminal event")
	}
}

// TestTerminalClosesFeed: the terminal event reaches subscribers, the
// feed refuses later publishes, and a late subscriber gets the full
// history with an already-closed channel.
func TestTerminalClosesFeed(t *testing.T) {
	h := NewHub(Options{})
	sub, _ := h.Subscribe("j", 0)
	h.Publish("j", curveEvent(1))
	h.Publish("j", Event{Type: TypeStatus, Status: "done", Terminal: true})
	got := collect(sub, nil, 2, 5*time.Second)
	if len(got) != 2 || !got[1].Terminal {
		t.Fatalf("subscriber saw %+v, want curve point then terminal", got)
	}
	if ev := h.Publish("j", curveEvent(9)); ev.Seq != 0 {
		t.Fatalf("post-terminal publish got seq %d, want 0 (dropped)", ev.Seq)
	}
	if !h.Done("j") {
		t.Fatal("Done(j) = false after terminal event")
	}
	late, backlog := h.Subscribe("j", 0)
	if len(backlog) != 2 {
		t.Fatalf("late subscriber backlog = %d events, want 2", len(backlog))
	}
	if _, ok := <-late.C; ok {
		t.Fatal("late subscriber channel open on a finished feed")
	}
	if got := h.Stats().Subscribers; got != 0 {
		t.Fatalf("Subscribers = %d after feed closed, want 0", got)
	}
}

// TestSlowConsumerDropAccounting: a subscriber that never drains a
// 1-slot buffer loses events from its channel — counted on the
// subscription and the hub — while the history keeps everything, so
// Since can backfill the gap.
func TestSlowConsumerDropAccounting(t *testing.T) {
	h := NewHub(Options{SubscriberBuffer: 1})
	sub, _ := h.Subscribe("j", 0)
	defer sub.Close()
	const n = 10
	for i := 1; i <= n; i++ {
		h.Publish("j", curveEvent(i))
	}
	if got := sub.Dropped(); got != n-1 {
		t.Fatalf("subscription dropped %d, want %d", got, n-1)
	}
	if got := h.Stats().Dropped; got != n-1 {
		t.Fatalf("hub dropped %d, want %d", got, n-1)
	}
	// The one delivered event is the first; the gap backfills from history.
	ev := <-sub.C
	if ev.Seq != 1 {
		t.Fatalf("delivered event has seq %d, want 1", ev.Seq)
	}
	rest := h.Since("j", ev.Seq)
	if len(rest) != n-1 || rest[0].Seq != 2 || rest[len(rest)-1].Seq != n {
		t.Fatalf("Since(1) = %d events [%d..%d], want seqs 2..%d",
			len(rest), rest[0].Seq, rest[len(rest)-1].Seq, n)
	}
}

// TestPrimeContinuesSequence: a primed feed (restart recovery) continues
// numbering after the restored history, does not recount published
// events, and marks itself done when the restored tail was terminal.
func TestPrimeContinuesSequence(t *testing.T) {
	h := NewHub(Options{})
	hist := []Event{
		{Seq: 1, Type: TypeCurvePoint, JobID: "j"},
		{Seq: 2, Type: TypeCurvePoint, JobID: "j"},
	}
	h.Prime("j", hist)
	if got := h.Stats().Published; got != 0 {
		t.Fatalf("Published = %d after Prime, want 0", got)
	}
	if ev := h.Publish("j", curveEvent(3)); ev.Seq != 3 {
		t.Fatalf("publish after prime got seq %d, want 3", ev.Seq)
	}
	// Prime on a feed with events is a no-op.
	h.Prime("j", hist)
	if got := h.LastSeq("j"); got != 3 {
		t.Fatalf("LastSeq = %d after redundant Prime, want 3", got)
	}

	h.Prime("done-job", []Event{{Seq: 7, Type: TypeStatus, Status: "done", Terminal: true}})
	if !h.Done("done-job") {
		t.Fatal("feed primed with a terminal tail is not done")
	}
	if ev := h.Publish("done-job", curveEvent(1)); ev.Seq != 0 {
		t.Fatal("publish accepted on a feed primed terminal")
	}
}

// TestConcurrentPublishSubscribe hammers one feed from many publishers
// and subscribers under -race: every subscriber must see a strictly
// increasing sequence (gaps allowed only where its drop counter says so).
func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub(Options{SubscriberBuffer: 8})
	const (
		publishers = 4
		perPub     = 50
		readers    = 3
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		sub, backlog := h.Subscribe("j", 0)
		wg.Add(1)
		go func(sub *Subscription, backlog []Event) {
			defer wg.Done()
			defer sub.Close()
			last := uint64(0)
			check := func(ev Event) {
				if ev.Seq <= last {
					t.Errorf("out-of-order delivery: %d after %d", ev.Seq, last)
				}
				last = ev.Seq
			}
			for _, ev := range backlog {
				check(ev)
			}
			for ev := range sub.C {
				check(ev)
			}
		}(sub, backlog)
	}
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				h.Publish("j", curveEvent(p*perPub+i))
			}
		}(p)
	}
	pubWG.Wait()
	h.Publish("j", Event{Type: TypeStatus, Status: "done", Terminal: true})
	wg.Wait()
	want := int64(publishers*perPub + 1)
	if got := h.Stats().Published; got != want {
		t.Fatalf("Published = %d, want %d", got, want)
	}
	all := h.Since("j", 0)
	if len(all) != int(want) {
		t.Fatalf("history holds %d events, want %d", len(all), want)
	}
	for i, ev := range all {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("history seq %d at index %d", ev.Seq, i)
		}
	}
}

// TestSinkSeesPublishOrder: the sink receives every event synchronously
// in sequence order, before Publish returns.
func TestSinkSeesPublishOrder(t *testing.T) {
	var mu sync.Mutex
	var seen []uint64
	h := NewHub(Options{Sink: func(ev Event) {
		mu.Lock()
		seen = append(seen, ev.Seq)
		mu.Unlock()
	}})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				h.Publish("j", curveEvent(i))
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 100 {
		t.Fatalf("sink saw %d events, want 100", len(seen))
	}
	for i, seq := range seen {
		if seq != uint64(i+1) {
			t.Fatalf("sink order broken at index %d: seq %d", i, seq)
		}
	}
}

// TestEventsAfterBinarySearch pins the backlog cut against a linear scan.
func TestEventsAfterBinarySearch(t *testing.T) {
	var hist []Event
	for i := 1; i <= 9; i++ {
		hist = append(hist, Event{Seq: uint64(i)})
	}
	for after := uint64(0); after <= 10; after++ {
		got := eventsAfter(hist, after)
		var want []Event
		for _, ev := range hist {
			if ev.Seq > after {
				want = append(want, ev)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("eventsAfter(%d) = %v, want %v", after, got, want)
		}
	}
}

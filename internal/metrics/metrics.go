// Package metrics implements the model-quality and ranking-quality measures
// reported in the paper's evaluation: accuracy and F1 for classification,
// R² for regression (Table IV), and nDCG for configuration-ranking quality
// (Table V, Figures 5–7).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of predictions equal to the true labels.
// It panics on a length mismatch and returns 0 for empty input.
func Accuracy(pred, truth []int) float64 {
	mustSameLen(len(pred), len(truth))
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ConfusionMatrix returns counts[t][p] = number of instances with true
// class t predicted as class p, over classes 0..numClasses-1.
func ConfusionMatrix(pred, truth []int, numClasses int) [][]int {
	mustSameLen(len(pred), len(truth))
	cm := make([][]int, numClasses)
	for i := range cm {
		cm[i] = make([]int, numClasses)
	}
	for i, p := range pred {
		t := truth[i]
		if t < 0 || t >= numClasses || p < 0 || p >= numClasses {
			panic(fmt.Sprintf("metrics: label out of range: true=%d pred=%d classes=%d", t, p, numClasses))
		}
		cm[t][p]++
	}
	return cm
}

// F1Binary returns the F1 score of the positive class (label 1) for binary
// labels in {0, 1}. Returns 0 when there are no predicted or true positives.
func F1Binary(pred, truth []int) float64 {
	mustSameLen(len(pred), len(truth))
	var tp, fp, fn int
	for i, p := range pred {
		t := truth[i]
		switch {
		case p == 1 && t == 1:
			tp++
		case p == 1 && t == 0:
			fp++
		case p == 0 && t == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	return 2 * precision * recall / (precision + recall)
}

// F1Macro returns the unweighted mean of per-class F1 scores.
// Classes absent from both pred and truth contribute 0.
func F1Macro(pred, truth []int, numClasses int) float64 {
	cm := ConfusionMatrix(pred, truth, numClasses)
	var sum float64
	for c := 0; c < numClasses; c++ {
		tp := cm[c][c]
		var fp, fn int
		for o := 0; o < numClasses; o++ {
			if o == c {
				continue
			}
			fp += cm[o][c]
			fn += cm[c][o]
		}
		if tp == 0 {
			continue
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		sum += 2 * precision * recall / (precision + recall)
	}
	return sum / float64(numClasses)
}

// R2 returns the coefficient of determination for regression predictions.
// A constant-truth vector yields 0 (undefined variance).
func R2(pred, truth []float64) float64 {
	mustSameLen(len(pred), len(truth))
	if len(pred) == 0 {
		return 0
	}
	var mean float64
	for _, t := range truth {
		mean += t
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i, t := range truth {
		d := t - pred[i]
		ssRes += d * d
		dm := t - mean
		ssTot += dm * dm
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// RMSE returns the root-mean-squared error.
func RMSE(pred, truth []float64) float64 {
	mustSameLen(len(pred), len(truth))
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, t := range truth {
		d := t - pred[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// LogLoss returns the mean negative log-likelihood of the true classes under
// the predicted probability rows. Probabilities are clipped to [eps, 1-eps].
func LogLoss(proba [][]float64, truth []int) float64 {
	mustSameLen(len(proba), len(truth))
	if len(proba) == 0 {
		return 0
	}
	const eps = 1e-15
	var s float64
	for i, row := range proba {
		t := truth[i]
		if t < 0 || t >= len(row) {
			panic(fmt.Sprintf("metrics: true label %d out of range %d", t, len(row)))
		}
		p := row[t]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		s -= math.Log(p)
	}
	return s / float64(len(proba))
}

// NDCG returns the normalized discounted cumulative gain of a predicted
// ranking against true relevances. predScores orders the items (higher is
// better); trueRelevance gives each item's actual quality. This is the
// ranking-quality measure used in the paper's cross-validation experiments:
// items are hyperparameter configurations, predScores are validation scores
// and trueRelevance is the test accuracy achieved with each configuration.
func NDCG(predScores, trueRelevance []float64) float64 {
	return NDCGAt(predScores, trueRelevance, len(predScores))
}

// NDCGAt is NDCG truncated to the top k positions of the predicted ranking.
func NDCGAt(predScores, trueRelevance []float64, k int) float64 {
	mustSameLen(len(predScores), len(trueRelevance))
	n := len(predScores)
	if n == 0 || k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Predicted ranking: by score descending; ties broken by index for
	// determinism.
	sort.SliceStable(order, func(a, b int) bool {
		return predScores[order[a]] > predScores[order[b]]
	})
	dcg := 0.0
	for pos := 0; pos < k; pos++ {
		dcg += gain(trueRelevance[order[pos]]) / discount(pos)
	}
	ideal := append([]float64(nil), trueRelevance...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := 0.0
	for pos := 0; pos < k; pos++ {
		idcg += gain(ideal[pos]) / discount(pos)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func gain(rel float64) float64 { return rel }

func discount(pos int) float64 { return math.Log2(float64(pos) + 2) }

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", a, b))
	}
}

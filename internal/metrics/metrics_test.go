package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1, 1}, []int{1, 0, 0, 1}); got != 0.75 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy != 0")
	}
	assertPanics(t, "length mismatch", func() { Accuracy([]int{1}, []int{1, 2}) })
}

func TestAccuracyBounds(t *testing.T) {
	f := func(seed int64) bool {
		pred := []int{int(seed) & 1, int(seed>>1) & 1, int(seed>>2) & 1}
		truth := []int{0, 1, 0}
		a := Accuracy(pred, truth)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := ConfusionMatrix([]int{0, 1, 1, 2}, []int{0, 1, 2, 2}, 3)
	if cm[0][0] != 1 || cm[1][1] != 1 || cm[2][1] != 1 || cm[2][2] != 1 {
		t.Fatalf("confusion matrix wrong: %v", cm)
	}
	assertPanics(t, "label out of range", func() {
		ConfusionMatrix([]int{5}, []int{0}, 3)
	})
}

func TestF1Binary(t *testing.T) {
	// tp=2, fp=1, fn=1 -> precision 2/3, recall 2/3, F1 = 2/3.
	pred := []int{1, 1, 1, 0, 0}
	truth := []int{1, 1, 0, 1, 0}
	if got := F1Binary(pred, truth); !almostEq(got, 2.0/3) {
		t.Fatalf("F1 = %v", got)
	}
	if F1Binary([]int{0, 0}, []int{1, 1}) != 0 {
		t.Fatal("no-TP F1 should be 0")
	}
	if got := F1Binary([]int{1, 1}, []int{1, 1}); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
}

func TestF1Macro(t *testing.T) {
	pred := []int{0, 1, 2}
	truth := []int{0, 1, 2}
	if got := F1Macro(pred, truth, 3); got != 1 {
		t.Fatalf("perfect macro F1 = %v", got)
	}
	// Class 2 never predicted or true; macro over 3 classes dilutes.
	pred2 := []int{0, 1}
	truth2 := []int{0, 1}
	if got := F1Macro(pred2, truth2, 3); !almostEq(got, 2.0/3) {
		t.Fatalf("macro F1 with absent class = %v", got)
	}
}

func TestR2(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	if got := R2(truth, truth); got != 1 {
		t.Fatalf("perfect R2 = %v", got)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(meanPred, truth); got != 0 {
		t.Fatalf("mean-predictor R2 = %v", got)
	}
	if got := R2([]float64{4, 3, 2, 1}, truth); got >= 0 {
		t.Fatalf("anti-predictor R2 = %v, want negative", got)
	}
	if R2([]float64{1}, []float64{1}) != 0 {
		t.Fatal("constant truth should give 0")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almostEq(got, math.Sqrt(12.5)) {
		t.Fatalf("RMSE = %v", got)
	}
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE != 0")
	}
}

func TestLogLoss(t *testing.T) {
	proba := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	truth := []int{0, 1}
	want := -(math.Log(0.9) + math.Log(0.8)) / 2
	if got := LogLoss(proba, truth); !almostEq(got, want) {
		t.Fatalf("LogLoss = %v, want %v", got, want)
	}
	// Clipping keeps the loss finite for zero probabilities.
	bad := [][]float64{{0, 1}}
	if got := LogLoss(bad, []int{0}); math.IsInf(got, 0) {
		t.Fatal("LogLoss not clipped")
	}
	assertPanics(t, "label out of range", func() { LogLoss(proba, []int{2, 1}) })
}

func TestNDCGPerfectRanking(t *testing.T) {
	rel := []float64{0.9, 0.5, 0.7, 0.3}
	if got := NDCG(rel, rel); !almostEq(got, 1) {
		t.Fatalf("NDCG of perfect ranking = %v", got)
	}
}

func TestNDCGWorstBelowBest(t *testing.T) {
	rel := []float64{0.1, 0.4, 0.9, 0.6}
	inverse := []float64{0.9, 0.6, 0.1, 0.4}
	best := NDCG(rel, rel)
	worst := NDCG(inverse, rel)
	if worst >= best {
		t.Fatalf("inverse ranking NDCG %v >= perfect %v", worst, best)
	}
	if worst < 0 || worst > 1 {
		t.Fatalf("NDCG %v out of [0,1]", worst)
	}
}

func TestNDCGBounds(t *testing.T) {
	f := func(a, b [6]float64) bool {
		pred := make([]float64, 6)
		rel := make([]float64, 6)
		for i := range pred {
			pred[i] = math.Abs(math.Mod(a[i], 10))
			rel[i] = math.Abs(math.Mod(b[i], 10))
			if math.IsNaN(pred[i]) || math.IsNaN(rel[i]) {
				return true
			}
		}
		v := NDCG(pred, rel)
		return v >= 0 && v <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNDCGAt(t *testing.T) {
	rel := []float64{1, 0.5, 0.25, 0}
	if got := NDCGAt(rel, rel, 2); !almostEq(got, 1) {
		t.Fatalf("NDCG@2 of perfect ranking = %v", got)
	}
	if NDCGAt(rel, rel, 0) != 0 {
		t.Fatal("NDCG@0 != 0")
	}
	if got := NDCGAt(rel, rel, 100); !almostEq(got, 1) {
		t.Fatalf("NDCG@k>n clamps: %v", got)
	}
	if NDCG(nil, nil) != 0 {
		t.Fatal("empty NDCG != 0")
	}
}

func TestNDCGZeroRelevance(t *testing.T) {
	if got := NDCG([]float64{1, 2}, []float64{0, 0}); got != 0 {
		t.Fatalf("all-zero relevance NDCG = %v", got)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

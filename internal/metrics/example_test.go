package metrics_test

import (
	"fmt"

	"enhancedbhpo/internal/metrics"
)

// NDCG judges a configuration ranking: predScores are cross-validation
// scores, trueRelevance the test accuracies actually achieved. A CV method
// that ranks configurations like the test set does scores near 1.
func ExampleNDCG() {
	truth := []float64{0.71, 0.85, 0.78, 0.90}
	goodCV := []float64{0.70, 0.84, 0.77, 0.91} // same ordering as truth
	badCV := []float64{0.90, 0.71, 0.85, 0.70}  // scrambled
	fmt.Printf("good CV nDCG %.3f\n", metrics.NDCG(goodCV, truth))
	fmt.Printf("bad CV nDCG  %.3f\n", metrics.NDCG(badCV, truth))
	// Output:
	// good CV nDCG 1.000
	// bad CV nDCG  0.945
}

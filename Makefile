# Developer entry points. `make check` is the gate CI (and reviewers)
# run: static analysis plus the full suite under the race detector.

GO ?= go

.PHONY: all build test race vet check fmt serve clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

fmt:
	gofmt -l -w .

# Run the HPO job service locally (see README "Running the service").
serve:
	$(GO) run ./cmd/bhpod -addr :8149

clean:
	$(GO) clean ./...

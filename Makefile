# Developer entry points. `make check` is the gate CI (and reviewers)
# run: static analysis plus the full suite under the race detector.

GO ?= go

.PHONY: all build test race vet check crash chaos sse failover membership fallback bench bench-smoke bench-multicore bench-service load fmt serve clean

# The kernel/Fit/fused-eval benchmark family captured in
# BENCH_kernels.json.
BENCH_PATTERN = BenchmarkMat|BenchmarkFit|BenchmarkFused

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Crash-safety suite: journal replay/compaction, kill/restart recovery,
# panic isolation, retry + failure budget, timeout/shutdown reasons, drain.
crash:
	$(GO) test -race -count=1 ./internal/serve/journal/...
	$(GO) test -race -count=1 -run 'TestRestartRecovery|TestPanicIsolation|TestTransientFailureRetried|TestFailureBudgetAbsorbsTrial|TestTimeoutReason|TestShutdownWithInFlightJobs|TestDrainRefusesSubmissions' ./internal/serve/

# Overload suite: admission control (429 + Retry-After), the evaluation
# deadline watchdog, and the chaos harness — a 30-second over-capacity
# submission storm with injected panics, wedged evaluations, online
# journal rotation and a mid-run kill/replay, all under the race
# detector. Plain `go test` runs the same harness with a ~2s storm;
# BHPOD_CHAOS_SECONDS overrides the length.
chaos:
	BHPOD_CHAOS_SECONDS=30 $(GO) test -race -count=1 -run 'TestChaosOverload|TestAdmissionControl429|TestEvalDeadlineAbandonsWedgedTrial|TestPoolAcquire|TestScope' -timeout 600s ./internal/serve/

# Streaming-telemetry suite: the SSE end-to-end path (submit a job,
# subscribe, drop the connection, resume with Last-Event-ID and receive
# every event exactly once in order), durable traces surviving a
# kill/restart byte-identically, slow-consumer drop accounting, the
# ?since=N incremental poll, the hub unit tests, trace-store
# crash-safety, and the `bhpo watch` client — all under -race.
sse:
	$(GO) test -race -count=1 ./internal/events/... ./internal/serve/tracestore/...
	$(GO) test -race -count=1 -run 'TestSSE|TestSlowConsumerDropsCounted|TestGetJobSince|TestTraceSurvivesKillAndRestart|TestMetricsExposeEventCounters' ./internal/serve/
	$(GO) test -race -count=1 -run 'TestWatch' ./cmd/bhpo/

# Cluster failover suite: the node-kill chaos e2es — the manual-replace
# variant and, with BHPOD_AUTO_FAILOVER=1, the zero-operator variant (a
# worker killed -9 mid-storm heals with no manual /cluster/replace: the
# coordinator verifies shipped replicas across sink roots, quarantines a
# failing standby, promotes the next, survives its own restart
# mid-incident via the membership journal, loses zero acked jobs, keeps
# byte-identical pre-crash curves, and resumes SSE at last-seq+1) — plus
# the hash-ring, multi-sink shipper and coordinator unit suites. Plain
# `go test` runs a ~2s storm; BHPOD_CHAOS_SECONDS overrides the length.
failover:
	$(GO) test -race -count=1 ./internal/serve/shipper/...
	BHPOD_CHAOS_SECONDS=30 BHPOD_AUTO_FAILOVER=1 $(GO) test -race -count=1 -timeout 600s ./internal/coord/
	$(GO) test -race -count=1 -run 'TestReplayFromShippedMatchesLocal|TestSubmitToken' ./internal/serve/

# Runtime-membership suite: join a node into a live ring, storm jobs
# onto it, drain it (no new routing), leave it (wait-for-idle, then
# remove) and recover the post-churn member set from the coordinator's
# crash-safe journal — plus the submit-path retry regression, all under
# the race detector.
membership:
	$(GO) test -race -count=1 -run 'TestMembership|TestMemberJournal|TestSubmitRetry' ./internal/coord/
	$(GO) test -race -count=1 -run 'TestSubmitToken' ./internal/serve/
	$(GO) test -race -count=1 ./cmd/bhpoctl/

# Kernel + training-loop benchmarks, recorded as the perf baseline.
# Writes BENCH_kernels.json (ns/op, B/op, allocs/op per benchmark).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_kernels.json

# Same benchmark family swept across GOMAXPROCS 1/2/4 (benchmark names
# gain -2/-4 suffixes), recording the row-parallel kernel path. Writes
# BENCH_kernels_multicore.json. Note: on a single-CPU container this
# measures the parallel code path under GOMAXPROCS oversubscription, not
# true hardware scaling.
bench-multicore:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -cpu 1,2,4 . | $(GO) run ./cmd/benchjson -out BENCH_kernels_multicore.json

# One-iteration smoke run so the benchmarks can never rot; part of check.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -benchmem . >/dev/null

# Multi-tenant scheduler gate: a short closed-loop bhpoload run under
# the race detector — 48 tenants at weights 3:1 saturating a 4-slot
# pool through the real HTTP stack — asserting the weighted fairness
# ratio stays under 1.6 (1.0 is perfect; an unweighted scheduler scores
# ~3). Part of check, plus the scheduler/tenant unit suites.
load:
	$(GO) test -race -count=1 ./internal/serve/sched/
	$(GO) test -race -count=1 -run 'TestTenant|TestFairness|TestPreempt|TestBatch|TestSchedulerDeterminism' ./internal/serve/
	$(GO) run -race ./cmd/bhpoload -selfhost -tenants 24 -classes 3,1 -duration 5s \
		-pool 4 -max-jobs 6 -max-pending 64 -eval-ms 25 -assert-fairness 1.6 >/dev/null

# Closed-loop service benchmark, recorded as the scheduler baseline:
# 1000 simulated tenants against a self-hosted daemon with admission
# pressure (MaxPending 192 over a 1000-tenant offered load), recording
# p50/p99 submit-to-first-curve-point latency, shed rate, per-class
# throughput and the weighted fairness ratio. Writes BENCH_service.json.
bench-service:
	$(GO) run ./cmd/bhpoload -selfhost -tenants 1000 -classes 3,1 -duration 8s \
		-pool 8 -max-jobs 32 -max-pending 192 -eval-ms 5 -poll 25ms -out BENCH_service.json

# Forced-fallback run: the portable blocked kernels stay tested end to
# end on SIMD hardware (BHPO_KERNEL overrides the auto-selected family),
# so a regression in the non-SIMD path cannot hide behind AVX2 CI boxes.
fallback:
	BHPO_KERNEL=blocked $(GO) test -count=1 ./internal/mat/ ./internal/nn/ ./internal/hpo/

check: vet race crash chaos sse failover membership fallback load bench-smoke

fmt:
	gofmt -l -w .

# Run the HPO job service locally (see README "Running the service").
serve:
	$(GO) run ./cmd/bhpod -addr :8149

clean:
	$(GO) clean ./...

# Developer entry points. `make check` is the gate CI (and reviewers)
# run: static analysis plus the full suite under the race detector.

GO ?= go

.PHONY: all build test race vet check crash fmt serve clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Crash-safety suite: journal replay/compaction, kill/restart recovery,
# panic isolation, retry + failure budget, timeout/shutdown reasons, drain.
crash:
	$(GO) test -race -count=1 ./internal/serve/journal/...
	$(GO) test -race -count=1 -run 'TestRestartRecovery|TestPanicIsolation|TestTransientFailureRetried|TestFailureBudgetAbsorbsTrial|TestTimeoutReason|TestShutdownWithInFlightJobs|TestDrainRefusesSubmissions' ./internal/serve/

check: vet race crash

fmt:
	gofmt -l -w .

# Run the HPO job service locally (see README "Running the service").
serve:
	$(GO) run ./cmd/bhpod -addr :8149

clean:
	$(GO) clean ./...

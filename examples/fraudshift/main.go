// Fraudshift: hyperparameter optimization on a heavily imbalanced binary
// problem (2% positives, simulating the paper's credit-card fraud
// dataset). This is where the paper's grouping machinery earns its keep:
// random subsets of a small budget often miss the rare class entirely,
// while group-based sampling keeps every group — including the one
// dominated by fraud cases — represented in every fold. Scores use F1, as
// the paper does for imbalanced datasets.
//
// Run with:
//
//	go run ./examples/fraudshift
package main

import (
	"fmt"
	"log"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
)

func main() {
	spec, err := dataset.SpecByName("fraud")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(0.5)
	train, test, err := dataset.Synthesize(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	dataset.Standardize(train, test)
	counts := train.ClassCounts()
	fmt.Printf("fraud-like dataset: %d instances, positives %.1f%%\n\n",
		train.Len(), 100*float64(counts[1])/float64(train.Len()))

	// Peek at the instance groups the enhanced method will build: feature
	// clusters crossed with (rare-merged) label categories.
	groups, err := grouping.Build(train, grouping.Options{V: 2}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	for g := 0; g < groups.V; g++ {
		pos := 0
		for _, idx := range groups.Members[g] {
			if train.Class[idx] == 1 {
				pos++
			}
		}
		fmt.Printf("group %d: %d instances, %.1f%% positive\n",
			g, groups.Size(g), 100*float64(pos)/float64(groups.Size(g)))
	}
	fmt.Println()

	space, err := search.TableIIISpace(3)
	if err != nil {
		log.Fatal(err)
	}
	base := nn.DefaultConfig()
	base.MaxIter = 20
	base.LearningRateInit = 0.02

	for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
		out, err := core.Run(train, test, core.Options{
			Method:     core.SHA,
			Variant:    variant,
			Space:      space,
			Base:       base,
			MaxConfigs: 54,
			UseF1:      true,
			Seed:       2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SHA (%s): test F1 %.2f%%  best: %s\n",
			variant, out.TestScore*100, out.Search.Best)
	}
}

// Cvranking: use the enhanced cross-validation standalone (the paper's
// §IV-C use case) to rank 18 configurations on a small evaluation budget,
// and compare the ranking quality of vanilla stratified CV against the
// group-based general+special construction with the UCB-β metric.
//
// Run with:
//
//	go run ./examples/cvranking
package main

import (
	"fmt"
	"log"
	"sort"

	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/metrics"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/search"
)

func main() {
	spec, err := dataset.SpecByName("splice")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(0.6)
	train, test, err := dataset.Synthesize(spec, 5)
	if err != nil {
		log.Fatal(err)
	}
	dataset.Standardize(train, test)

	space, err := search.TableIIISpace(2) // 6 hidden sizes × 3 activations
	if err != nil {
		log.Fatal(err)
	}
	configs := space.Enumerate()
	base := nn.DefaultConfig()
	base.MaxIter = 20
	base.LearningRateInit = 0.02

	// Ground truth: each configuration trained on the full training set.
	truth := make([]float64, len(configs))
	for i, cfg := range configs {
		nnCfg, err := search.ToNNConfig(cfg, base)
		if err != nil {
			log.Fatal(err)
		}
		nnCfg.Seed = uint64(i)
		model, err := nn.Fit(train, nnCfg)
		if err != nil {
			log.Fatal(err)
		}
		truth[i] = model.Score(test)
	}

	groups, err := grouping.Build(train, grouping.Options{V: 2}, rng.New(9))
	if err != nil {
		log.Fatal(err)
	}

	// Rank all configurations with 20% of the data via two CV strategies.
	budget := train.Len() / 5
	gamma := scoring.Gamma(budget, train.Len())
	strategies := []struct {
		name   string
		folds  cv.Builder
		scorer scoring.Scorer
		groups *grouping.Groups
	}{
		{"stratified + mean", cv.StratifiedKFold{}, scoring.MeanScorer{}, nil},
		{"groups + UCB-β", cv.GroupFolds{KGen: 3, KSpe: 2}, scoring.UCBScorer{}, groups},
	}
	for _, st := range strategies {
		ev := &hpo.CVEvaluator{Train: train, Base: base, Folds: st.folds, K: 5, Groups: st.groups}
		pred := make([]float64, len(configs))
		r := rng.New(17)
		for i, cfg := range configs {
			scores, err := ev.Evaluate(cfg, budget, r.Split(uint64(i)))
			if err != nil {
				log.Fatal(err)
			}
			pred[i] = st.scorer.Score(scores, gamma)
		}
		best := argmax(pred)
		fmt.Printf("%-20s nDCG %.3f | recommends %s (true acc %.2f%%)\n",
			st.name, metrics.NDCG(pred, truth), configs[best], truth[best]*100)
		printTop(configs, pred, truth, 3)
		fmt.Println()
	}
	fmt.Printf("best achievable test accuracy: %.2f%%\n", truth[argmax(truth)]*100)
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func printTop(configs []search.Config, pred, truth []float64, k int) {
	order := make([]int, len(pred))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return pred[order[a]] > pred[order[b]] })
	for rank := 0; rank < k && rank < len(order); rank++ {
		i := order[rank]
		fmt.Printf("  #%d  score %.4f  true %.2f%%  %s\n", rank+1, pred[i], truth[i]*100, configs[i])
	}
}

// Anytime: inspect what the optimizer actually did. Runs SHA and SHA+ on
// the same dataset, prints their per-round trajectories and incumbent
// curves (trace package), then saves the winning model to disk and loads
// it back — the full train → select → persist → serve cycle.
//
// Run with:
//
//	go run ./examples/anytime
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/trace"
)

func main() {
	spec, err := dataset.SpecByName("splice")
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := dataset.Synthesize(spec, 3)
	if err != nil {
		log.Fatal(err)
	}
	dataset.Standardize(train, test)

	space, err := search.TableIIISpace(3)
	if err != nil {
		log.Fatal(err)
	}
	base := nn.DefaultConfig()
	base.MaxIter = 20
	base.LearningRateInit = 0.02

	var bestOut *core.Outcome
	for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
		out, err := core.Run(train, test, core.Options{
			Method:  core.SHA,
			Variant: variant,
			Space:   space,
			Base:    base,
			Seed:    4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- SHA (%s), test accuracy %.2f%% ---\n", variant, out.TestScore*100)
		trace.Fprint(os.Stdout, out.Search)
		points := trace.Anytime(out.Search.Trials)
		fmt.Printf("  incumbent curve: %s\n\n", trace.Sparkline(points, 50))
		if bestOut == nil || out.TestScore > bestOut.TestScore {
			bestOut = out
		}
	}

	// Persist the winning model and prove the round trip.
	var buf bytes.Buffer
	if err := bestOut.Model.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved winning model: %d bytes (%d parameters)\n", buf.Len(), bestOut.Model.NumParams())
	loaded, err := nn.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded model test accuracy: %.2f%% (original %.2f%%)\n",
		loaded.Score(test)*100, bestOut.TestScore*100)
}

// Housing: hyperparameter optimization for a regression problem
// (simulating the paper's kc-house price dataset). Regression has no class
// labels, so the enhanced method bins the numeric targets by magnitude
// (§III-A) to obtain the label categories that grouping combines with
// feature clusters. Quality is the R² score, as in Table IV.
//
// Run with:
//
//	go run ./examples/housing
package main

import (
	"fmt"
	"log"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/search"
)

func main() {
	spec, err := dataset.SpecByName("kc-house")
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(0.5)
	train, test, err := dataset.Synthesize(spec, 11)
	if err != nil {
		log.Fatal(err)
	}
	dataset.Standardize(train, test)
	fmt.Printf("housing-like dataset: %d train / %d test, %d features (regression)\n\n",
		train.Len(), test.Len(), train.Features())

	space, err := search.TableIIISpace(4)
	if err != nil {
		log.Fatal(err)
	}
	base := nn.DefaultConfig()
	base.Activation = nn.Tanh
	base.MaxIter = 25
	base.LearningRateInit = 0.02

	// Hyperband with the enhanced components, tuning the regression
	// grouping explicitly: 4 magnitude bins over the target.
	opts := core.Options{
		Method:  core.Hyperband,
		Variant: core.Enhanced,
		Space:   space,
		Base:    base,
		Enhanced: hpo.EnhancedOptions{
			KGen: 3,
			KSpe: 2,
		},
		Seed: 3,
	}
	opts.Enhanced.Grouping.RegressionBins = 4
	opts.HB.MaxBrackets = 3

	out, err := core.Run(train, test, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HB+ best config: %s\n", out.Search.Best)
	fmt.Printf("test R²: %.4f (train %.4f)\n", out.TestScore, out.TrainScore)
	fmt.Printf("search: %d evaluations in %.2fs\n",
		out.Search.Evaluations, out.TotalTime.Seconds())
}

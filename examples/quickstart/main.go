// Quickstart: optimize MLP hyperparameters on a simulated dataset with the
// paper's enhanced Successive Halving ("SHA+") and compare against the
// vanilla version.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/search"
)

func main() {
	// 1. Get data. Synthesize stands in for loading a real dataset: the
	//    "australian" spec mirrors that dataset's shape (690 instances, 14
	//    features, 2 classes).
	spec, err := dataset.SpecByName("australian")
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := dataset.Synthesize(spec, 42)
	if err != nil {
		log.Fatal(err)
	}
	dataset.Standardize(train, test)
	fmt.Printf("dataset: %d train / %d test instances, %d features\n\n",
		train.Len(), test.Len(), train.Features())

	// 2. Define the search space: the first 4 Table III hyperparameters
	//    (hidden sizes, activation, solver, initial learning rate) —
	//    162 configurations, the paper's §IV-B setting.
	space, err := search.TableIIISpace(4)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Shared training settings for the non-searched hyperparameters.
	base := nn.DefaultConfig()
	base.MaxIter = 25
	base.LearningRateInit = 0.02

	// 4. Run vanilla SHA and the enhanced SHA+ and compare.
	for _, variant := range []core.Variant{core.Vanilla, core.Enhanced} {
		out, err := core.Run(train, test, core.Options{
			Method:  core.SHA,
			Variant: variant,
			Space:   space,
			Base:    base,
			Seed:    3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SHA (%s)\n", variant)
		fmt.Printf("  best config: %s\n", out.Search.Best)
		fmt.Printf("  test accuracy: %.2f%%\n", out.TestScore*100)
		fmt.Printf("  search time: %.2fs (%d evaluations)\n\n",
			out.TotalTime.Seconds(), out.Search.Evaluations)
	}
}

// Package enhancedbhpo_test holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation (regenerating the artifact at
// reduced scale each iteration) plus ablation benchmarks for the design
// choices called out in DESIGN.md and micro-benchmarks for the hot
// substrates. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-scale artifacts are produced by cmd/experiments; these
// benchmarks use experiments.FastSettings so the whole suite finishes in
// minutes while still exercising the identical code paths.
package enhancedbhpo_test

import (
	"io"
	"runtime"
	"testing"

	"enhancedbhpo/internal/cluster"
	"enhancedbhpo/internal/cv"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/experiments"
	"enhancedbhpo/internal/grouping"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/scoring"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/stats"
)

func fastSettings(datasets ...string) experiments.Settings {
	s := experiments.FastSettings()
	s.Datasets = datasets
	return s
}

// BenchmarkTable4 regenerates the Table IV comparison (random, SHA/SHA+,
// HB/HB+, BOHB/BOHB+) on one simulated dataset per iteration.
func BenchmarkTable4(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkTable5 regenerates the Table V grouping ablation.
func BenchmarkTable5(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkFig3 regenerates the β–γ curve of Figure 3.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig3().Print(io.Discard)
	}
}

// BenchmarkFig4 regenerates the Figure 4 sweeps (HP count, model size).
func BenchmarkFig4(b *testing.B) {
	s := experiments.FastSettings()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkFig5 regenerates the Figure 5 CV comparison.
func BenchmarkFig5(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkFig6 regenerates the Figure 6 fold-allocation sweep.
func BenchmarkFig6(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkFig7 regenerates the Figure 7 metric ablation.
func BenchmarkFig7(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkProp1 regenerates the Proposition 1 stability analysis.
func BenchmarkProp1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunProp1().Print(io.Discard)
	}
}

// BenchmarkBaselines regenerates the §IV-B full-budget baseline comparison
// (random, SMAC, TPE, grid vs SHA/SHA+).
func BenchmarkBaselines(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunBaselines(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkAnytime regenerates the incumbent-curve comparison of SHA vs
// SHA+ (budget-normalized AUC).
func BenchmarkAnytime(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAnytime(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkAblations regenerates the parameter-sensitivity sweeps
// (group count v, special-fold bias, α, r_group).
func BenchmarkAblations(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblations(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkRobustness regenerates the label-corruption stress comparison.
func BenchmarkRobustness(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRobustness(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkExtended regenerates the extended-method comparison
// (ASHA/PASHA/DEHB, vanilla vs enhanced).
func BenchmarkExtended(b *testing.B) {
	s := fastSettings("australian")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunExtended(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkStability regenerates the seed-stability comparison.
func BenchmarkStability(b *testing.B) {
	s := fastSettings("australian")
	s.Seeds = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStability(s)
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// BenchmarkTable2 regenerates the dataset inventory.
func BenchmarkTable2(b *testing.B) {
	s := fastSettings()
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(s).Print(io.Discard)
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md) ---

func benchData(b *testing.B, scale float64) *dataset.Dataset {
	b.Helper()
	spec, err := dataset.SpecByName("australian")
	if err != nil {
		b.Fatal(err)
	}
	spec = spec.Scaled(scale)
	train, _, err := dataset.Synthesize(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	return train
}

// BenchmarkAblationRGroup measures how the balanced-clustering ratio
// r_group changes group-construction cost.
func BenchmarkAblationRGroup(b *testing.B) {
	train := benchData(b, 0.5)
	for _, rg := range []float64{0.2, 0.5, 0.8} {
		b.Run(rgName(rg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := grouping.Build(train, grouping.Options{V: 3, RGroup: rg}, rng.New(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func rgName(rg float64) string {
	switch rg {
	case 0.2:
		return "rgroup=0.2"
	case 0.5:
		return "rgroup=0.5"
	default:
		return "rgroup=0.8"
	}
}

// BenchmarkAblationAlphaBeta measures UCB-β scoring cost across weight
// settings (scoring is on the hot path of every halving decision).
func BenchmarkAblationAlphaBeta(b *testing.B) {
	scores := []float64{0.71, 0.74, 0.69, 0.77, 0.72}
	for _, cfg := range []struct {
		name    string
		alpha   float64
		betaMax float64
	}{
		{"alpha=0.1,beta=10", 0.1, 10},
		{"alpha=0.5,beta=2", 0.5, 2},
		{"alpha=1,beta=1", 1, 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := scoring.UCBScorer{Alpha: cfg.alpha, BetaMax: cfg.betaMax}
			for i := 0; i < b.N; i++ {
				_ = s.Score(scores, float64(i%100))
			}
		})
	}
}

// BenchmarkAblationFoldBuilders compares the cost of the three fold
// constructions at the same budget.
func BenchmarkAblationFoldBuilders(b *testing.B) {
	train := benchData(b, 1)
	groups, err := grouping.Build(train, grouping.Options{V: 2}, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	builders := []struct {
		name string
		bld  cv.Builder
	}{
		{"random", cv.RandomKFold{}},
		{"stratified", cv.StratifiedKFold{}},
		{"group(3+2)", cv.GroupFolds{KGen: 3, KSpe: 2}},
	}
	budget := train.Len() / 2
	for _, bb := range builders {
		b.Run(bb.name, func(b *testing.B) {
			r := rng.New(4)
			for i := 0; i < b.N; i++ {
				if _, err := bb.bld.Folds(train, groups, budget, 5, r.Split(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkKMeans measures the clustering substrate on a paper-scale
// feature matrix.
func BenchmarkKMeans(b *testing.B) {
	train := benchData(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(train.X, cluster.KMeansOptions{K: 3}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLPTrain measures one full MLP fit per solver.
func BenchmarkMLPTrain(b *testing.B) {
	train := benchData(b, 0.5)
	for _, solver := range []nn.Solver{nn.SGD, nn.Adam, nn.LBFGS} {
		b.Run(solver.String(), func(b *testing.B) {
			cfg := nn.DefaultConfig()
			cfg.Solver = solver
			cfg.MaxIter = 10
			cfg.LearningRateInit = 0.02
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i)
				if _, err := nn.Fit(train, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSHA measures one full Successive Halving run (vanilla vs
// enhanced) on a small space — the end-to-end unit the experiments repeat.
func BenchmarkSHA(b *testing.B) {
	train := benchData(b, 0.3)
	space, err := search.TableIIISpace(2)
	if err != nil {
		b.Fatal(err)
	}
	base := nn.DefaultConfig()
	base.MaxIter = 8
	base.LearningRateInit = 0.02
	run := func(b *testing.B, comps hpo.Components) {
		configs := space.Enumerate()[:8]
		for i := 0; i < b.N; i++ {
			ev := hpo.NewCVEvaluator(train, base, comps)
			if _, err := hpo.SuccessiveHalving(configs, ev, comps, hpo.SHAOptions{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("vanilla", func(b *testing.B) {
		run(b, hpo.VanillaComponents(5))
	})
	b.Run("enhanced", func(b *testing.B) {
		comps, err := hpo.EnhancedComponents(train, hpo.EnhancedOptions{}, rng.New(5))
		if err != nil {
			b.Fatal(err)
		}
		run(b, comps)
	})
}

// --- Compute-kernel benchmarks (the BENCH_kernels.json baseline) ---
//
// Each kernel benchmark runs the retained naive reference and every
// dispatchable kernel family — blocked always, simd where the CPU
// supports it — on identical dense data at MLP-typical shapes, so the
// recorded ns/op ratios are the kernel speedups themselves. `make bench`
// captures these (with -benchmem) into BENCH_kernels.json.

// dispatchKernels lists the kernel families Mul/MulT/TMul can dispatch to
// on this machine, each forced explicitly so the sub-benchmark names say
// what actually ran regardless of the default selection.
func dispatchKernels() []mat.KernelKind {
	ks := []mat.KernelKind{mat.Blocked}
	if mat.SIMDAvailable() {
		ks = append(ks, mat.SIMD)
	}
	return ks
}

// benchMat returns a rows×cols matrix of nonzero values: dense data is
// the honest baseline because the naive kernels skip zero multiplicands.
func benchMat(r *rng.RNG, rows, cols int) *mat.Dense {
	m := mat.NewDense(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = r.Norm() + 3 // shifted away from zero
	}
	return m
}

// matShapes are (batch × width × width) products as they occur inside
// nn.Fit on the Table III search space.
var matShapes = []struct {
	name    string
	m, k, n int
}{
	{"batch32_w50", 32, 50, 50},
	{"batch128_w100", 128, 100, 100},
	{"batch256_w200", 256, 200, 200},
	// Wide enough (n, k ≥ the tile thresholds) to engage the cache-blocked
	// panel path on top of the register kernels.
	{"batch64_w512", 64, 512, 512},
}

// BenchmarkMatMul compares naive vs blocked vs simd dst = a*b (the
// forward-pass product).
func BenchmarkMatMul(b *testing.B) {
	for _, sh := range matShapes {
		r := rng.New(21)
		a := benchMat(r, sh.m, sh.k)
		bb := benchMat(r, sh.k, sh.n)
		dst := mat.NewDense(sh.m, sh.n)
		b.Run(sh.name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.NaiveMul(dst, a, bb)
			}
		})
		for _, k := range dispatchKernels() {
			b.Run(sh.name+"/"+k.String(), func(b *testing.B) {
				defer mat.SetKernel(mat.SetKernel(k))
				for i := 0; i < b.N; i++ {
					mat.Mul(dst, a, bb)
				}
			})
		}
	}
}

// BenchmarkMatMulT compares naive vs blocked vs simd dst = a*bᵀ (the
// backprop delta propagation).
func BenchmarkMatMulT(b *testing.B) {
	for _, sh := range matShapes {
		r := rng.New(22)
		a := benchMat(r, sh.m, sh.k)
		bt := benchMat(r, sh.n, sh.k)
		dst := mat.NewDense(sh.m, sh.n)
		b.Run(sh.name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.NaiveMulT(dst, a, bt)
			}
		})
		for _, k := range dispatchKernels() {
			b.Run(sh.name+"/"+k.String(), func(b *testing.B) {
				defer mat.SetKernel(mat.SetKernel(k))
				for i := 0; i < b.N; i++ {
					mat.MulT(dst, a, bt)
				}
			})
		}
	}
}

// BenchmarkMatTMul compares naive vs blocked vs simd dst = aᵀ*b (the
// weight gradient).
func BenchmarkMatTMul(b *testing.B) {
	for _, sh := range matShapes {
		r := rng.New(23)
		at := benchMat(r, sh.k, sh.m)
		bb := benchMat(r, sh.k, sh.n)
		dst := mat.NewDense(sh.m, sh.n)
		b.Run(sh.name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.NaiveTMul(dst, at, bb)
			}
		})
		for _, k := range dispatchKernels() {
			b.Run(sh.name+"/"+k.String(), func(b *testing.B) {
				defer mat.SetKernel(mat.SetKernel(k))
				for i := 0; i < b.N; i++ {
					mat.TMul(dst, at, bb)
				}
			})
		}
	}
}

// fitBenchConfig is the MLP the end-to-end Fit benchmarks train: wide
// enough (2×100 hidden) that the matmul kernels dominate, like the large
// end of the Table III space. Logistic activation keeps the activations
// dense — with ReLU roughly half the activations are exactly zero and
// the naive kernels' skip branch hides part of the kernel cost, so the
// measured ratio would understate the dense-path speedup.
func fitBenchConfig(solver nn.Solver) nn.Config {
	cfg := nn.DefaultConfig()
	cfg.Solver = solver
	cfg.HiddenLayerSizes = []int{100, 100}
	cfg.Activation = nn.Logistic
	cfg.BatchSize = 64
	cfg.MaxIter = 10
	cfg.LearningRateInit = 0.02
	return cfg
}

// benchFit runs nn.Fit under the given kernel family.
func benchFit(b *testing.B, train *dataset.Dataset, cfg nn.Config, kernel mat.KernelKind) {
	b.Helper()
	prev := mat.SetKernel(kernel)
	defer mat.SetKernel(prev)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := nn.Fit(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitStochastic measures a full adam fit under each kernel
// family — the end-to-end per-trial speedup every bandit optimizer
// inherits.
func BenchmarkFitStochastic(b *testing.B) {
	train := benchData(b, 0.5)
	cfg := fitBenchConfig(nn.Adam)
	b.Run("naive", func(b *testing.B) { benchFit(b, train, cfg, mat.NaiveKernel) })
	for _, k := range dispatchKernels() {
		b.Run(k.String(), func(b *testing.B) { benchFit(b, train, cfg, k) })
	}
}

// BenchmarkFitLBFGS is the full-batch counterpart of
// BenchmarkFitStochastic.
func BenchmarkFitLBFGS(b *testing.B) {
	train := benchData(b, 0.5)
	cfg := fitBenchConfig(nn.LBFGS)
	b.Run("naive", func(b *testing.B) { benchFit(b, train, cfg, mat.NaiveKernel) })
	for _, k := range dispatchKernels() {
		b.Run(k.String(), func(b *testing.B) { benchFit(b, train, cfg, k) })
	}
}

// BenchmarkFusedEval measures aggregate evaluation throughput for a
// pool-8-sized group of concurrent trials. The /solo variant evaluates
// the eight requests one after another — what eight pool slots achieve
// without fusion when evaluations serialize on the CPU — while /fused
// stacks them through EvaluateBatch, the path the serve-layer fuser
// takes. ns/op is per *group of eight*, so the solo/fused ratio is the
// aggregate eval-throughput speedup fusion buys. L-BFGS samples are
// excluded: they take the documented solo fallback and would measure the
// fallback, not fusion.
func BenchmarkFusedEval(b *testing.B) {
	train := benchData(b, 0.5)
	base := nn.DefaultConfig()
	base.MaxIter = 8
	comps := hpo.VanillaComponents(3)
	ev := hpo.NewCVEvaluator(train, base, comps)
	space, err := search.TableIIISpace(8)
	if err != nil {
		b.Fatal(err)
	}
	const group = 8
	budget := ev.FullBudget()
	var reqs []hpo.EvalRequest
	for i := 0; len(reqs) < group; i++ {
		cfg := space.SampleN(rng.New(uint64(400+i)), 1)[0]
		if nnCfg, cerr := search.ToNNConfig(cfg, base); cerr != nil || nnCfg.Solver == nn.LBFGS {
			continue
		}
		reqs = append(reqs, hpo.EvalRequest{Cfg: cfg, Budget: budget, R: rng.New(uint64(500 + i))})
	}
	b.Run("solo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := ev.Evaluate(req.Cfg, req.Budget, req.R); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results, _ := ev.EvaluateBatch(reqs, runtime.GOMAXPROCS(0))
			for _, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkBetaEval measures the Eq. 2 weight function itself.
func BenchmarkBetaEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = scoring.Beta(float64(i%101), 10)
	}
}

// BenchmarkBinomialProp1 measures the Proposition 1 convolution.
func BenchmarkBinomialProp1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stats.TwoGroupPMF(20, 40, 0.5, 0.25)
	}
}

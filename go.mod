module enhancedbhpo

go 1.22

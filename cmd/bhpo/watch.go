package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"enhancedbhpo/internal/events"
	"enhancedbhpo/internal/trace"
)

// watchMain is the `bhpo watch <job-url>` entry point: it subscribes to
// a bhpod job's SSE event feed and renders a live incumbent ticker —
// one line per evaluation with the running best, plus rung promotions,
// retries, deadline abandonments and failure-budget charges as they
// happen — then prints the final snapshot when the job reaches a
// terminal state. Dropped connections resume via Last-Event-ID, so the
// ticker never misses or repeats an event.
//
// Exit code: 0 when the job finished (done), 1 when it failed or the
// watch itself errored, 2 when it was cancelled.
func watchMain(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	var (
		after   = fs.Uint64("after", 0, "resume after this event sequence number (0 = from the start)")
		retries = fs.Int("retries", 8, "consecutive failed (re)connect attempts before giving up")
		quiet   = fs.Bool("quiet", false, "only print lifecycle transitions and the final summary")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: bhpo watch [flags] <job-url>")
		fmt.Fprintln(fs.Output(), "  job-url is a bhpod job, e.g. http://localhost:8149/jobs/job-1")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 1
	}
	// Ctrl-C stops the watch cleanly; the job itself keeps running
	// server-side (use DELETE /jobs/{id} to cancel it).
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	status, err := watchJob(ctx, http.DefaultClient, fs.Arg(0), watchOptions{
		After:   *after,
		Retries: *retries,
		Quiet:   *quiet,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpo watch:", err)
		return 1
	}
	switch status {
	case "done":
		return 0
	case "cancelled":
		return 2
	default:
		return 1
	}
}

// watchOptions tunes watchJob.
type watchOptions struct {
	// After resumes the feed past this sequence number.
	After uint64
	// Retries bounds consecutive failed connection attempts (a delivered
	// event resets the count). <=0 selects 8.
	Retries int
	// Quiet suppresses the per-evaluation ticker.
	Quiet bool
}

// watchJob consumes the job's SSE feed until the terminal event, then
// fetches and prints the final snapshot. It returns the job's terminal
// status ("done", "failed", "cancelled").
func watchJob(ctx context.Context, client *http.Client, jobURL string, opts watchOptions, w io.Writer) (string, error) {
	u, err := url.Parse(jobURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("invalid job URL %q", jobURL)
	}
	if opts.Retries <= 0 {
		opts.Retries = 8
	}
	eventsURL := strings.TrimSuffix(jobURL, "/") + "/events"
	t := &ticker{w: w, quiet: opts.Quiet}
	last := opts.After
	fails := 0
	for {
		prev := last
		terminal, retryable, err := streamEvents(ctx, client, eventsURL, &last, t)
		if terminal {
			break
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if !retryable {
			// A definitive refusal (unknown job, bad request): retrying
			// would only repeat it.
			return "", err
		}
		if last > prev {
			// The connection made progress before dropping; only
			// *consecutive* fruitless attempts count against the cap.
			fails = 0
		}
		fails++
		if fails > opts.Retries {
			if err == nil {
				err = errors.New("stream ended before the job finished")
			}
			return "", fmt.Errorf("giving up after %d attempts: %w", fails, err)
		}
		// Jitter-free doubling is fine here: a single client resuming a
		// single feed, capped well below anything thundering.
		backoff := 250 * time.Millisecond << min(fails-1, 4)
		if !opts.Quiet {
			fmt.Fprintf(w, "-- reconnecting after seq %d (attempt %d)\n", last, fails)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	return finalSummary(ctx, client, jobURL, t, w)
}

// streamEvents runs one SSE connection, rendering events as they
// arrive. It reports whether the job's terminal event was seen and, when
// it was not, whether the failure is worth retrying: transport errors and
// gateway/overload statuses (429, 502, 503, 504) are the transient shapes
// a cluster failover or an overloaded node produces — the caller resumes
// from *last with backoff, exactly as for a dropped connection. Anything
// else non-200 (404 unknown job, 400) is definitive and fails fast.
func streamEvents(ctx context.Context, client *http.Client, eventsURL string, last *uint64, t *ticker) (terminal, retryable bool, _ error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, eventsURL, nil)
	if err != nil {
		return false, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *last > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*last, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		err := fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return false, true, err
		}
		return false, false, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue // keepalive ping
			}
			var ev events.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				// A torn frame mid-drop: reconnect and resume past *last.
				return false, true, fmt.Errorf("decoding event: %w", err)
			}
			data = nil
			if ev.Seq <= *last {
				continue
			}
			*last = ev.Seq
			t.render(ev)
			if ev.Terminal {
				return true, false, nil
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// id:/event: lines and comments; the payload repeats both.
		}
	}
	return false, true, sc.Err()
}

// ticker renders the live feed, keeping the incumbent curve so each
// line can show a sparkline of progress so far.
type ticker struct {
	w     io.Writer
	quiet bool
	curve []trace.Point
}

func (t *ticker) render(ev events.Event) {
	switch ev.Type {
	case events.TypeCurvePoint:
		if ev.Point == nil {
			return
		}
		t.curve = append(t.curve, *ev.Point)
		if t.quiet {
			return
		}
		p := *ev.Point
		fmt.Fprintf(t.w, "%4d  budget %-8d best %.4f  %s\n",
			p.Evaluations, p.CumBudget, p.BestScore, trace.Sparkline(t.curve, 30))
	case events.TypeRung:
		if !t.quiet {
			fmt.Fprintf(t.w, "-- rung %d: promoted to budget %d\n", ev.Round, ev.Budget)
		}
	case events.TypeRetry:
		if !t.quiet {
			fmt.Fprintf(t.w, "-- retry attempt %d: %s\n", ev.Attempt, ev.Error)
		}
	case events.TypeDeadline:
		if !t.quiet {
			fmt.Fprintf(t.w, "-- evaluation abandoned at deadline (budget %d)\n", ev.Budget)
		}
	case events.TypeFailure:
		if !t.quiet {
			fmt.Fprintf(t.w, "-- failure budget charged: %d failures (%s)\n", ev.Failures, ev.Reason)
		}
	case events.TypeStatus:
		line := fmt.Sprintf("== %s", ev.Status)
		if ev.Reason != "" {
			line += " (" + ev.Reason + ")"
		}
		if ev.Error != "" {
			line += ": " + ev.Error
		}
		fmt.Fprintln(t.w, line)
	}
}

// watchSnapshot is the slice of the job snapshot the final summary
// needs; the full schema lives in internal/serve.
type watchSnapshot struct {
	Status      string         `json:"status"`
	Reason      string         `json:"reason"`
	Error       string         `json:"error"`
	Evaluations int            `json:"evaluations"`
	BestConfig  map[string]any `json:"best_config"`
	BestScore   *float64       `json:"best_score"`
	TestScore   *float64       `json:"test_score"`
	Sparkline   string         `json:"sparkline"`
}

// finalSummary fetches the job's terminal snapshot and prints it.
func finalSummary(ctx context.Context, client *http.Client, jobURL string, t *ticker, w io.Writer) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, jobURL, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fetching final snapshot: %s", resp.Status)
	}
	var snap watchSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return "", fmt.Errorf("decoding final snapshot: %w", err)
	}
	fmt.Fprintf(w, "\njob %s", snap.Status)
	if snap.Reason != "" {
		fmt.Fprintf(w, " (%s)", snap.Reason)
	}
	fmt.Fprintf(w, ": %d evaluations\n", snap.Evaluations)
	if snap.Error != "" {
		fmt.Fprintf(w, "error: %s\n", snap.Error)
	}
	if snap.BestScore != nil {
		fmt.Fprintf(w, "best score: %.4f\n", *snap.BestScore)
	}
	if snap.TestScore != nil {
		fmt.Fprintf(w, "test score: %.4f\n", *snap.TestScore)
	}
	if len(snap.BestConfig) > 0 {
		cfg, _ := json.Marshal(snap.BestConfig)
		fmt.Fprintf(w, "best config: %s\n", cfg)
	}
	if snap.Sparkline != "" {
		fmt.Fprintf(w, "curve: %s\n", snap.Sparkline)
	}
	return snap.Status, nil
}

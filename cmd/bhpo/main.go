// Command bhpo runs one hyperparameter optimization on a simulated dataset
// and prints the selected configuration with its train/test quality —
// a quick way to compare a vanilla bandit method against its enhanced
// ("+") counterpart.
//
// Usage:
//
//	bhpo -dataset a9a -method sha -enhanced [-hps 4] [-configs 162] \
//	     [-scale 0.35] [-seed 1] [-iters 20] [-f1]
//	bhpo watch [-after N] [-retries 8] [-quiet] http://host:8149/jobs/job-1
//
// The watch subcommand follows a job running on a bhpod daemon: it
// subscribes to the job's Server-Sent Events feed and renders a live
// incumbent ticker (curve points, rung promotions, retries, failures),
// resuming across dropped connections via Last-Event-ID, and prints the
// final snapshot when the job finishes.
//
// Datasets: australian splice gisette machine nticusdroid a9a fraud
// credit2023 satimage usps molecules kc-house. Methods: every optimizer in
// the hpo registry — random sha hyperband (alias hb) bohb asha pasha dehb
// smac tpe (alias optuna) grid.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"enhancedbhpo/internal/core"
	"enhancedbhpo/internal/dataset"
	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/nn"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		os.Exit(watchMain(os.Args[2:]))
	}
	var (
		dsName   = flag.String("dataset", "australian", "simulated dataset name")
		csvPath  = flag.String("csv", "", "optional CSV file (last column = label/target) used instead of -dataset")
		csvKind  = flag.String("kind", "classification", "task kind for -csv: classification or regression")
		method   = flag.String("method", "sha", "optimizer: "+strings.Join(hpo.MethodNames(), ", "))
		enhanced = flag.Bool("enhanced", false, "use the paper's enhanced components (grouping, general+special folds, UCB-β score)")
		hps      = flag.Int("hps", 4, "number of Table III hyperparameters (1-8)")
		spaceP   = flag.String("space", "", "optional JSON file defining a custom search space (overrides -hps)")
		configs  = flag.Int("configs", 162, "max configurations (sha/asha/pasha start set, grid cap)")
		scale    = flag.Float64("scale", 0.35, "dataset scale factor")
		seed     = flag.Uint64("seed", 1, "random seed")
		iters    = flag.Int("iters", 20, "MLP training epochs")
		useF1    = flag.Bool("f1", false, "report F1 instead of accuracy")
		showTr   = flag.Bool("trace", false, "print the per-round trajectory and incumbent curve")
		asJSON   = flag.Bool("json", false, "emit the outcome as JSON instead of text")
	)
	flag.Parse()
	if err := run(*dsName, *csvPath, *csvKind, *spaceP, *method, *enhanced, *hps, *configs, *scale, *seed, *iters, *useF1, *showTr, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "bhpo:", err)
		os.Exit(1)
	}
}

func run(dsName, csvPath, csvKind, spacePath, methodName string, enhanced bool, hps, configs int, scale float64, seed uint64, iters int, useF1, showTrace, asJSON bool) error {
	train, test, err := loadData(dsName, csvPath, csvKind, scale, seed)
	if err != nil {
		return err
	}
	dataset.Standardize(train, test)

	method, err := core.ParseMethod(methodName)
	if err != nil {
		return err
	}
	var space *search.Space
	if spacePath != "" {
		f, err := os.Open(spacePath)
		if err != nil {
			return err
		}
		space, err = search.ReadSpaceJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		space, err = search.TableIIISpace(hps)
		if err != nil {
			return err
		}
	}
	variant := core.Vanilla
	if enhanced {
		variant = core.Enhanced
	}
	base := nn.DefaultConfig()
	base.MaxIter = iters
	base.LearningRateInit = 0.02

	if !asJSON {
		fmt.Printf("dataset %s (%s): %d train / %d test instances, %d features\n",
			train.Name, train.Kind, train.Len(), test.Len(), train.Features())
		fmt.Printf("space: %d configurations over %d hyperparameters\n", space.Size(), len(space.Dims))
		fmt.Printf("method: %s (%s)\n\n", method, variant)
	}

	out, err := core.Run(train, test, core.Options{
		Method:     method,
		Variant:    variant,
		Space:      space,
		Base:       base,
		MaxConfigs: configs,
		UseF1:      useF1,
		Seed:       seed,
	})
	if err != nil {
		return err
	}

	if asJSON {
		return out.WriteJSON(os.Stdout)
	}
	fmt.Printf("selected configuration: %s\n", out.Search.Best)
	fmt.Printf("evaluations: %d trials\n", out.Search.Evaluations)
	fmt.Printf("train score: %.4f\n", out.TrainScore)
	fmt.Printf("test score:  %.4f\n", out.TestScore)
	fmt.Printf("setup %.2fs + search %.2fs (total %.2fs)\n",
		out.SetupTime.Seconds(), out.SearchTime.Seconds(), out.TotalTime.Seconds())
	if showTrace {
		fmt.Println()
		trace.Fprint(os.Stdout, out.Search)
		points := trace.Anytime(out.Search.Trials)
		fmt.Printf("incumbent curve: %s\n", trace.Sparkline(points, 50))
	}
	return nil
}

// loadData either synthesizes a simulated dataset or loads a user CSV
// (splitting off 20% for testing, per the paper's 80/20 rule).
func loadData(dsName, csvPath, csvKind string, scale float64, seed uint64) (train, test *dataset.Dataset, err error) {
	if csvPath == "" {
		spec, err := dataset.SpecByName(dsName)
		if err != nil {
			return nil, nil, err
		}
		spec = spec.Scaled(scale)
		return dataset.Synthesize(spec, seed)
	}
	var kind dataset.Kind
	switch csvKind {
	case "classification":
		kind = dataset.Classification
	case "regression":
		kind = dataset.Regression
	default:
		return nil, nil, fmt.Errorf("unknown -kind %q", csvKind)
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	full, err := dataset.ReadCSV(f, kind, csvPath)
	if err != nil {
		return nil, nil, err
	}
	train, test = full.TrainTestSplit(rng.New(seed), 0.2)
	return train, test, nil
}

package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enhancedbhpo/internal/serve"
)

// startJob spins up a bhpod-equivalent test server and submits one small
// job, returning the job's URL.
func startJob(t *testing.T) string {
	t.Helper()
	m := serve.NewManager(serve.Config{PoolSize: 2, MaxJobs: 2})
	ts := httptest.NewServer(serve.NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	job, err := m.Submit(serve.JobSpec{
		Dataset:    "australian",
		Scale:      0.06,
		Method:     "sha",
		NumHPs:     2,
		MaxConfigs: 6,
		Iters:      2,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts.URL + "/jobs/" + job.ID
}

// TestWatchLiveJob follows a job from submission to completion: the
// ticker must show curve points and lifecycle transitions, and the final
// summary must carry the terminal snapshot.
func TestWatchLiveJob(t *testing.T) {
	jobURL := startJob(t)
	var out strings.Builder
	status, err := watchJob(context.Background(), http.DefaultClient, jobURL, watchOptions{}, &out)
	if err != nil {
		t.Fatalf("watch failed: %v\noutput:\n%s", err, out.String())
	}
	if status != "done" {
		t.Fatalf("terminal status %q, want done", status)
	}
	text := out.String()
	for _, want := range []string{"== running", "== done", "best ", "job done", "best score:", "test score:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestWatchFinishedJob subscribes after the job already finished: the
// full backlog replays and the stream closes immediately.
func TestWatchFinishedJob(t *testing.T) {
	jobURL := startJob(t)
	// First watch runs the job to completion...
	var first strings.Builder
	if _, err := watchJob(context.Background(), http.DefaultClient, jobURL, watchOptions{}, &first); err != nil {
		t.Fatal(err)
	}
	// ...the second one gets the whole feed as backlog.
	var out strings.Builder
	status, err := watchJob(context.Background(), http.DefaultClient, jobURL, watchOptions{Quiet: true}, &out)
	if err != nil {
		t.Fatalf("watch of finished job failed: %v", err)
	}
	if status != "done" {
		t.Fatalf("terminal status %q, want done", status)
	}
	if text := out.String(); !strings.Contains(text, "job done") {
		t.Fatalf("missing final summary:\n%s", text)
	}
}

// TestWatchBadURL: a malformed job URL is rejected before any request.
func TestWatchBadURL(t *testing.T) {
	var out strings.Builder
	if _, err := watchJob(context.Background(), http.DefaultClient, "not-a-url", watchOptions{}, &out); err == nil {
		t.Fatal("invalid URL accepted")
	}
}

// TestWatchUnknownJob: a 404 from the events endpoint surfaces as an
// error once the retry budget is spent.
func TestWatchUnknownJob(t *testing.T) {
	jobURL := startJob(t)
	base := jobURL[:strings.LastIndex(jobURL, "/")]
	var out strings.Builder
	_, err := watchJob(context.Background(), http.DefaultClient, base+"/job-404", watchOptions{Retries: 1, Quiet: true}, &out)
	if err == nil {
		t.Fatal("watch of unknown job succeeded")
	}
	if !strings.Contains(err.Error(), "404") {
		t.Fatalf("error does not surface the 404: %v", err)
	}
}

package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"enhancedbhpo/internal/serve"
)

// startJob spins up a bhpod-equivalent test server and submits one small
// job, returning the job's URL.
func startJob(t *testing.T) string {
	t.Helper()
	m := serve.NewManager(serve.Config{PoolSize: 2, MaxJobs: 2})
	ts := httptest.NewServer(serve.NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	job, err := m.Submit(serve.JobSpec{
		Dataset:    "australian",
		Scale:      0.06,
		Method:     "sha",
		NumHPs:     2,
		MaxConfigs: 6,
		Iters:      2,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts.URL + "/jobs/" + job.ID
}

// TestWatchLiveJob follows a job from submission to completion: the
// ticker must show curve points and lifecycle transitions, and the final
// summary must carry the terminal snapshot.
func TestWatchLiveJob(t *testing.T) {
	jobURL := startJob(t)
	var out strings.Builder
	status, err := watchJob(context.Background(), http.DefaultClient, jobURL, watchOptions{}, &out)
	if err != nil {
		t.Fatalf("watch failed: %v\noutput:\n%s", err, out.String())
	}
	if status != "done" {
		t.Fatalf("terminal status %q, want done", status)
	}
	text := out.String()
	for _, want := range []string{"== running", "== done", "best ", "job done", "best score:", "test score:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestWatchFinishedJob subscribes after the job already finished: the
// full backlog replays and the stream closes immediately.
func TestWatchFinishedJob(t *testing.T) {
	jobURL := startJob(t)
	// First watch runs the job to completion...
	var first strings.Builder
	if _, err := watchJob(context.Background(), http.DefaultClient, jobURL, watchOptions{}, &first); err != nil {
		t.Fatal(err)
	}
	// ...the second one gets the whole feed as backlog.
	var out strings.Builder
	status, err := watchJob(context.Background(), http.DefaultClient, jobURL, watchOptions{Quiet: true}, &out)
	if err != nil {
		t.Fatalf("watch of finished job failed: %v", err)
	}
	if status != "done" {
		t.Fatalf("terminal status %q, want done", status)
	}
	if text := out.String(); !strings.Contains(text, "job done") {
		t.Fatalf("missing final summary:\n%s", text)
	}
}

// TestWatchBadURL: a malformed job URL is rejected before any request.
func TestWatchBadURL(t *testing.T) {
	var out strings.Builder
	if _, err := watchJob(context.Background(), http.DefaultClient, "not-a-url", watchOptions{}, &out); err == nil {
		t.Fatal("invalid URL accepted")
	}
}

// TestWatchRetriesGatewayErrors: 502/503 are what a coordinator answers
// while a worker fails over — the watch must reconnect with its
// Last-Event-ID intact, like a dropped connection, not exit. The stub
// sheds the first two connects with 503 and 502, then serves the feed;
// the watch must come back carrying the sequence it already had.
func TestWatchRetriesGatewayErrors(t *testing.T) {
	var connects atomic.Int64
	var lastEventID atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/job-1/events", func(w http.ResponseWriter, r *http.Request) {
		switch connects.Add(1) {
		case 1:
			http.Error(w, "node a is dead; awaiting replacement", http.StatusServiceUnavailable)
			return
		case 2:
			http.Error(w, "bad gateway", http.StatusBadGateway)
			return
		}
		lastEventID.Store(r.Header.Get("Last-Event-ID"))
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\ndata: {\"seq\":1,\"type\":\"status\",\"status\":\"running\"}\n\n")
		fmt.Fprint(w, "id: 2\ndata: {\"seq\":2,\"type\":\"status\",\"status\":\"done\",\"terminal\":true}\n\n")
	})
	mux.HandleFunc("GET /jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"done","evaluations":1}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out strings.Builder
	status, err := watchJob(context.Background(), http.DefaultClient,
		ts.URL+"/jobs/job-1", watchOptions{Quiet: true}, &out)
	if err != nil {
		t.Fatalf("watch gave up on gateway errors: %v\noutput:\n%s", err, out.String())
	}
	if status != "done" {
		t.Fatalf("terminal status %q, want done", status)
	}
	if n := connects.Load(); n != 3 {
		t.Fatalf("%d connects, want 3 (two shed, one served)", n)
	}
	if got := lastEventID.Load(); got != "" {
		t.Fatalf("Last-Event-ID %q on fresh resume, want empty", got)
	}
}

// TestWatchResumesAfterMidStreamFailover: the feed drops mid-stream (a
// worker died), the next connect is shed with 503 (failover in
// progress), and the one after serves the rest — the watch must resume
// past the last sequence it saw, with no events repeated or skipped.
func TestWatchResumesAfterMidStreamFailover(t *testing.T) {
	var connects atomic.Int64
	var resumedFrom atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/job-1/events", func(w http.ResponseWriter, r *http.Request) {
		switch connects.Add(1) {
		case 1:
			// Two frames, then the node "dies" mid-stream.
			w.Header().Set("Content-Type", "text/event-stream")
			fmt.Fprint(w, "id: 1\ndata: {\"seq\":1,\"type\":\"status\",\"status\":\"running\"}\n\n")
			fmt.Fprint(w, "id: 2\ndata: {\"seq\":2,\"type\":\"curve_point\",\"point\":{\"evaluations\":1}}\n\n")
			return
		case 2:
			http.Error(w, "node a is dead; awaiting replacement", http.StatusServiceUnavailable)
			return
		}
		resumedFrom.Store(r.Header.Get("Last-Event-ID"))
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 3\ndata: {\"seq\":3,\"type\":\"status\",\"status\":\"done\",\"terminal\":true}\n\n")
	})
	mux.HandleFunc("GET /jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"done","evaluations":1}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out strings.Builder
	status, err := watchJob(context.Background(), http.DefaultClient,
		ts.URL+"/jobs/job-1", watchOptions{Quiet: true}, &out)
	if err != nil {
		t.Fatalf("watch did not survive the failover: %v\noutput:\n%s", err, out.String())
	}
	if status != "done" {
		t.Fatalf("terminal status %q, want done", status)
	}
	if got := resumedFrom.Load(); got != "2" {
		t.Fatalf("post-failover connect resumed from %q, want %q", got, "2")
	}
}

// TestWatchUnknownJob: a 404 from the events endpoint is definitive and
// fails fast — no retry budget is spent on it.
func TestWatchUnknownJob(t *testing.T) {
	jobURL := startJob(t)
	base := jobURL[:strings.LastIndex(jobURL, "/")]
	var out strings.Builder
	_, err := watchJob(context.Background(), http.DefaultClient, base+"/job-404", watchOptions{Retries: 1, Quiet: true}, &out)
	if err == nil {
		t.Fatal("watch of unknown job succeeded")
	}
	if !strings.Contains(err.Error(), "404") {
		t.Fatalf("error does not surface the 404: %v", err)
	}
}

// Command datagen synthesizes one of the simulated paper datasets and
// writes it to CSV, so the generators can feed external tools (or users
// can eyeball the data the experiments run on).
//
// Usage:
//
//	datagen -dataset a9a -seed 1 -scale 0.35 -out a9a_train.csv -test a9a_test.csv
//
// Omitting -out writes the training split to stdout; -test is optional.
package main

import (
	"flag"
	"fmt"
	"os"

	"enhancedbhpo/internal/dataset"
)

func main() {
	var (
		dsName = flag.String("dataset", "australian", "simulated dataset name (see `datagen -list`)")
		list   = flag.Bool("list", false, "list available datasets and exit")
		seed   = flag.Uint64("seed", 1, "generator seed")
		scale  = flag.Float64("scale", 1.0, "size scale factor")
		out    = flag.String("out", "", "training-split CSV path (default stdout)")
		testP  = flag.String("test", "", "optional test-split CSV path")
		std    = flag.Bool("standardize", false, "standardize features (fit on train)")
	)
	flag.Parse()
	if *list {
		for _, s := range dataset.PaperSpecs() {
			fmt.Printf("%-12s %-14s classes=%d train=%d test=%d features=%d\n",
				s.Name, s.Kind, s.Classes, s.Train, s.Test, s.Features)
		}
		return
	}
	if err := run(*dsName, *seed, *scale, *out, *testP, *std); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dsName string, seed uint64, scale float64, out, testPath string, standardize bool) error {
	spec, err := dataset.SpecByName(dsName)
	if err != nil {
		return err
	}
	if scale != 1.0 {
		spec = spec.Scaled(scale)
	}
	train, test, err := dataset.Synthesize(spec, seed)
	if err != nil {
		return err
	}
	if standardize {
		dataset.Standardize(train, test)
	}
	if out == "" {
		return train.WriteCSV(os.Stdout)
	}
	if err := writeFile(out, train); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d training instances to %s\n", train.Len(), out)
	if testPath != "" {
		if err := writeFile(testPath, test); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d test instances to %s\n", test.Len(), testPath)
	}
	return nil
}

func writeFile(path string, d *dataset.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

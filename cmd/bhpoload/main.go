// Command bhpoload is the closed-loop load harness for the multi-tenant
// weighted-fair scheduler: it simulates N tenants (thousands, if asked)
// each keeping one job in flight against a bhpod — either an external
// daemon/coordinator (-addr) or a self-hosted in-process service
// (-selfhost) — and reports the numbers the scheduler is accountable
// for: p50/p99 submit-to-first-curve-point latency, the shed rate under
// admission pressure, per-weight-class throughput, and the weighted
// fairness ratio (per-tenant throughput normalized by weight, max/min
// across classes; 1.0 is perfect weighted fairness).
//
// Tenants are assigned round-robin to the -classes weight list, so
// `-tenants 48 -classes 3,1` builds 24 weight-3 tenants interleaved
// with 24 weight-1 tenants. Each tenant loops: submit a small job
// (X-Submit-Token idempotency headers are not needed — every spec is
// fresh), back off briefly on a 429, poll the job until its anytime
// curve has a first point (latency sample) and then until it finishes,
// and immediately submit the next. The loop never opens more than one
// job per tenant, so offered load tracks completion rate — a closed
// loop, not an open firehose — and fairness shows up directly in
// completions per tenant.
//
// In -selfhost mode the harness wires the weights programmatically
// (tenant-0042 → its class weight), swaps the MLP evaluator for a
// fixed-latency synthetic one (-eval-ms) that still occupies a real
// pool slot, and serves the real HTTP stack via an in-process listener:
// everything between the socket and the slot — admission, quotas, the
// stride scheduler, preemption, journaling — is the production path.
//
// With -out the report is written as JSON (the BENCH_service.json
// artifact); with -assert-fairness F the harness exits non-zero when
// the weighted fairness ratio exceeds F, which `make load` uses as a
// regression gate.
//
// Usage:
//
//	bhpoload -selfhost -tenants 1000 -classes 3,1 -duration 8s \
//	         -pool 8 -max-jobs 32 -max-pending 256 -eval-ms 5 \
//	         -out BENCH_service.json
//	bhpoload -addr http://localhost:8149 -tenants 16 -duration 30s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enhancedbhpo/internal/hpo"
	"enhancedbhpo/internal/rng"
	"enhancedbhpo/internal/search"
	"enhancedbhpo/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target daemon or coordinator URL (empty with -selfhost)")
		selfhost = flag.Bool("selfhost", false, "run an in-process bhpod service instead of targeting -addr")
		tenants  = flag.Int("tenants", 8, "number of simulated tenants")
		classes  = flag.String("classes", "3,1", "comma-separated weight classes assigned round-robin")
		duration = flag.Duration("duration", 10*time.Second, "how long tenants keep submitting")
		pool     = flag.Int("pool", 4, "selfhost: shared evaluation pool size")
		maxJobs  = flag.Int("max-jobs", 8, "selfhost: concurrently running job bound")
		maxPend  = flag.Int("max-pending", 256, "selfhost: global queued-job cap (shed past it)")
		quota    = flag.Int("quota", 0, "selfhost: per-tenant queued-job quota (0 = off)")
		evalMS   = flag.Int("eval-ms", 5, "selfhost: synthetic per-evaluation latency in ms (0 = real MLP training)")
		poll     = flag.Duration("poll", 10*time.Millisecond, "job status poll interval")
		out      = flag.String("out", "", "write the JSON report here (empty = stdout)")
		assertF  = flag.Float64("assert-fairness", 0, "exit 1 when the weighted fairness ratio exceeds this (0 = no assertion)")
		seed     = flag.Int64("seed", 1, "harness RNG seed (backoff jitter, spec seeds)")
	)
	flag.Parse()
	weights, err := parseClasses(*classes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpoload:", err)
		os.Exit(2)
	}
	if *tenants < 1 {
		fmt.Fprintln(os.Stderr, "bhpoload: -tenants must be >= 1")
		os.Exit(2)
	}

	base := *addr
	var shutdown func()
	if *selfhost {
		base, shutdown = startSelfhost(*tenants, weights, *pool, *maxJobs, *maxPend, *quota, *evalMS)
		defer shutdown()
	} else if base == "" {
		fmt.Fprintln(os.Stderr, "bhpoload: need -addr or -selfhost")
		os.Exit(2)
	}
	base = strings.TrimSuffix(base, "/")

	rep := runLoad(base, *tenants, weights, *duration, *poll, *seed)
	if shutdown != nil {
		shutdown()
		shutdown = nil
	}

	payload, _ := json.MarshalIndent(rep, "", "  ")
	payload = append(payload, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, payload, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bhpoload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bhpoload: wrote %s (%d tenants, %d jobs, fairness %.2f)\n",
			*out, rep.Tenants, rep.JobsDone, rep.WeightedFairnessRatio)
	} else {
		os.Stdout.Write(payload)
	}
	if *assertF > 0 {
		if rep.JobsDone == 0 {
			fmt.Fprintln(os.Stderr, "bhpoload: fairness assertion failed: no jobs completed")
			os.Exit(1)
		}
		if rep.WeightedFairnessRatio > *assertF {
			fmt.Fprintf(os.Stderr, "bhpoload: fairness assertion failed: weighted ratio %.2f > %.2f\n",
				rep.WeightedFairnessRatio, *assertF)
			os.Exit(1)
		}
	}
}

// parseClasses parses "3,1" into the weight-class list.
func parseClasses(s string) ([]int, error) {
	var weights []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-classes: weight %q must be an integer >= 1", part)
		}
		weights = append(weights, w)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("-classes: need at least one weight")
	}
	return weights, nil
}

func tenantName(i int) string { return fmt.Sprintf("tenant-%04d", i) }

// sleepEvaluator stands in for MLP training in selfhost mode: it holds
// its pool slot for a fixed latency and returns a placeholder fold
// score, so the harness measures the scheduler, not the math kernels.
type sleepEvaluator struct {
	inner hpo.Evaluator
	d     time.Duration
}

func (e *sleepEvaluator) FullBudget() int { return e.inner.FullBudget() }

func (e *sleepEvaluator) Evaluate(cfg search.Config, budget int, r *rng.RNG) ([]float64, error) {
	time.Sleep(e.d)
	return []float64{0.5}, nil
}

// startSelfhost boots the in-process service: programmatic tenant
// weights for every simulated tenant, the synthetic evaluator, and the
// real HTTP server on a loopback listener.
func startSelfhost(tenants int, classes []int, pool, maxJobs, maxPend, quota, evalMS int) (string, func()) {
	tw := make(map[string]int, tenants)
	for i := 0; i < tenants; i++ {
		tw[tenantName(i)] = classes[i%len(classes)]
	}
	cfg := serve.Config{
		PoolSize:      pool,
		MaxJobs:       maxJobs,
		MaxPending:    maxPend,
		TenantWeights: tw,
		TenantQuota:   quota,
	}
	if evalMS > 0 {
		d := time.Duration(evalMS) * time.Millisecond
		cfg.WrapEvaluator = func(jobID string, inner hpo.Evaluator) hpo.Evaluator {
			return &sleepEvaluator{inner: inner, d: d}
		}
	}
	m := serve.NewManager(cfg)
	ts := httptest.NewServer(serve.NewServer(m))
	var once sync.Once
	return ts.URL, func() {
		once.Do(func() {
			ts.Close()
			// Jobs still in flight are cancelled with the shutdown reason;
			// the harness has already stopped caring about their results.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.Shutdown(ctx)
		})
	}
}

// report is the JSON artifact (BENCH_service.json when -out is set).
type report struct {
	Tenants    int     `json:"tenants"`
	Classes    []int   `json:"classes"`
	DurationMS float64 `json:"duration_ms"`
	JobsDone   int64   `json:"jobs_done"`
	JobsFailed int64   `json:"jobs_failed"`
	Submitted  int64   `json:"submitted"`
	Shed       int64   `json:"shed"`
	ShedRate   float64 `json:"shed_rate"`
	// FirstPoint latencies: submit acknowledged -> first anytime-curve
	// point visible, in milliseconds.
	FirstPointP50MS float64 `json:"first_point_p50_ms"`
	FirstPointP99MS float64 `json:"first_point_p99_ms"`
	// PerClass carries one row per weight class.
	PerClass []classReport `json:"per_class"`
	// RawFairnessRatio is max/min per-tenant-average throughput across
	// classes, unnormalized (equals the weight ratio under perfect
	// weighted fairness). WeightedFairnessRatio normalizes each class by
	// its weight first; 1.0 is perfect.
	RawFairnessRatio      float64 `json:"raw_fairness_ratio"`
	WeightedFairnessRatio float64 `json:"weighted_fairness_ratio"`
}

type classReport struct {
	Weight  int   `json:"weight"`
	Tenants int   `json:"tenants"`
	Jobs    int64 `json:"jobs"`
	// JobsPerTenantPerSec is the class's per-tenant-average completion
	// throughput; dividing by Weight gives the normalized share the
	// fairness ratio compares.
	JobsPerTenantPerSec float64 `json:"jobs_per_tenant_per_sec"`
}

// runLoad drives the closed loop: one goroutine per tenant, each
// keeping exactly one job in flight until the deadline.
func runLoad(base string, tenants int, classes []int, d, poll time.Duration, seed int64) *report {
	var (
		submitted atomic.Int64
		shed      atomic.Int64
		done      atomic.Int64
		failed    atomic.Int64
		mu        sync.Mutex
		latencies []float64
		classJobs = make([]int64, len(classes))
	)
	deadline := time.Now().Add(d)
	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := tenantLoop{
				base:   base,
				client: client,
				tenant: tenantName(i),
				class:  i % len(classes),
				poll:   poll,
				rnd:    rand.New(rand.NewSource(seed + int64(i))),
			}
			for time.Now().Before(deadline) {
				first, ok, failedJob := t.oneJob(deadline, &submitted, &shed)
				if !ok {
					continue
				}
				if failedJob {
					failed.Add(1)
					continue
				}
				done.Add(1)
				mu.Lock()
				classJobs[t.class]++
				if first > 0 {
					latencies = append(latencies, float64(first)/float64(time.Millisecond))
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	rep := &report{
		Tenants:    tenants,
		Classes:    classes,
		DurationMS: float64(d) / float64(time.Millisecond),
		JobsDone:   done.Load(),
		JobsFailed: failed.Load(),
		Submitted:  submitted.Load(),
		Shed:       shed.Load(),
	}
	if total := rep.Submitted + rep.Shed; total > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(total)
	}
	sort.Float64s(latencies)
	rep.FirstPointP50MS = percentile(latencies, 0.50)
	rep.FirstPointP99MS = percentile(latencies, 0.99)

	secs := d.Seconds()
	minNorm, maxNorm := 0.0, 0.0
	minRaw, maxRaw := 0.0, 0.0
	for c, w := range classes {
		// Tenants are assigned round-robin, so class c holds every i with
		// i%len(classes) == c.
		n := tenants / len(classes)
		if c < tenants%len(classes) {
			n++
		}
		perTenant := 0.0
		if n > 0 && secs > 0 {
			perTenant = float64(classJobs[c]) / float64(n) / secs
		}
		rep.PerClass = append(rep.PerClass, classReport{
			Weight:              w,
			Tenants:             n,
			Jobs:                classJobs[c],
			JobsPerTenantPerSec: perTenant,
		})
		norm := perTenant / float64(w)
		if c == 0 || norm < minNorm {
			minNorm = norm
		}
		if c == 0 || norm > maxNorm {
			maxNorm = norm
		}
		if c == 0 || perTenant < minRaw {
			minRaw = perTenant
		}
		if c == 0 || perTenant > maxRaw {
			maxRaw = perTenant
		}
	}
	if minNorm > 0 {
		rep.WeightedFairnessRatio = maxNorm / minNorm
	}
	if minRaw > 0 {
		rep.RawFairnessRatio = maxRaw / minRaw
	}
	return rep
}

type tenantLoop struct {
	base   string
	client *http.Client
	tenant string
	class  int
	poll   time.Duration
	rnd    *rand.Rand
	seq    uint64
}

// oneJob submits one job and follows it to a terminal state. Returns
// the submit-to-first-curve-point latency (0 if never observed — the
// deadline can land mid-job), whether a job completed at all, and
// whether it finished failed/cancelled rather than done.
func (t *tenantLoop) oneJob(deadline time.Time, submitted, shed *atomic.Int64) (time.Duration, bool, bool) {
	t.seq++
	spec := map[string]any{
		"tenant":  t.tenant,
		"dataset": "australian",
		"scale":   0.1,
		"method":  "random",
		"trials":  1,
		"iters":   2,
		"seed":    t.seq,
	}
	body, _ := json.Marshal(spec)
	start := time.Now()
	id := ""
	for id == "" {
		if !time.Now().Before(deadline) {
			return 0, false, false
		}
		resp, err := t.client.Post(t.base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.backoff()
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var snap struct {
				ID string `json:"id"`
			}
			err := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err != nil || snap.ID == "" {
				return 0, false, false
			}
			submitted.Add(1)
			id = snap.ID
		case http.StatusTooManyRequests:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			shed.Add(1)
			t.backoff()
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			t.backoff()
		}
	}

	var first time.Duration
	for {
		resp, err := t.client.Get(t.base + "/jobs/" + id)
		if err != nil {
			time.Sleep(t.poll)
			continue
		}
		var snap struct {
			Status string            `json:"status"`
			Curve  []json.RawMessage `json:"curve"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			time.Sleep(t.poll)
			continue
		}
		if first == 0 && len(snap.Curve) > 0 {
			first = time.Since(start)
		}
		switch snap.Status {
		case "done":
			return first, true, false
		case "failed", "cancelled":
			return first, true, true
		}
		// Past the deadline the loop only waits for the in-flight job, so
		// every completion is counted; a job the service never finishes
		// (service shut down) is abandoned after a grace period.
		if time.Since(deadline.Add(30*time.Second)) > 0 {
			return first, false, false
		}
		time.Sleep(t.poll)
	}
}

// backoff sleeps a short jittered interval after a shed or transport
// error — capped well under a second so the closed loop re-offers load
// quickly and the shed rate reflects steady-state pressure.
func (t *tenantLoop) backoff() {
	d := 20*time.Millisecond + time.Duration(t.rnd.Int63n(int64(180*time.Millisecond)))
	time.Sleep(d)
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

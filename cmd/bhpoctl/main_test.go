package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"enhancedbhpo/internal/coord"
)

// TestRenderStatusExitCode: `bhpoctl status` doubles as a health gate —
// exit 0 only when every ring member is alive; spares never fail it.
func TestRenderStatusExitCode(t *testing.T) {
	now := time.Now()
	cases := []struct {
		name  string
		nodes []coord.NodeStatus
		want  int
	}{
		{"all alive", []coord.NodeStatus{
			{Name: "a", State: coord.StateAlive, LastProbe: now},
			{Name: "b", State: coord.StateAlive, LastProbe: now},
		}, 0},
		{"one degraded", []coord.NodeStatus{
			{Name: "a", State: coord.StateAlive, LastProbe: now},
			{Name: "b", State: coord.StateDegraded, LastProbe: now, LastError: "probe: timeout"},
		}, 1},
		{"one dead", []coord.NodeStatus{
			{Name: "a", State: coord.StateDead},
			{Name: "b", State: coord.StateAlive},
		}, 1},
		{"draining member", []coord.NodeStatus{
			{Name: "a", State: coord.StateAlive},
			{Name: "b", State: coord.StateDraining},
		}, 1},
		{"restoring member", []coord.NodeStatus{
			{Name: "a", State: coord.StateRestoring},
		}, 1},
		{"standby spares never fail the gate", []coord.NodeStatus{
			{Name: "a", State: coord.StateAlive},
			{Name: "s0", State: coord.StateStandby, Quarantined: true},
			{Name: "s1", State: coord.StateStandby},
		}, 0},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		if got := renderStatus(&out, tc.nodes); got != tc.want {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, got, tc.want, out.String())
		}
		if !strings.Contains(out.String(), "NODE") || !strings.Contains(out.String(), "STATE") {
			t.Errorf("%s: missing table header:\n%s", tc.name, out.String())
		}
	}

	// Quarantined spares are flagged in the table.
	var out bytes.Buffer
	renderStatus(&out, []coord.NodeStatus{{Name: "s0", State: coord.StateStandby, Quarantined: true}})
	if !strings.Contains(out.String(), "s0!") {
		t.Errorf("quarantined standby not flagged:\n%s", out.String())
	}
}

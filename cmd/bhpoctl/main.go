// Command bhpoctl is the bhpod cluster coordinator: it serves the same
// HTTP API as a single daemon — POST /jobs, GET /jobs/{id}, DELETE,
// the SSE event feed, /methods, /metrics, /healthz — over a set of
// worker nodes, so clients (curl, bhpo watch) talk to one address and
// the cluster looks like one big bhpod.
//
// Jobs route by consistent hash on their evaluation-cache scope (the
// dataset/scale/seed/folds fingerprint), so jobs that share synthesized
// data and cached fold scores land on the same node and stay warm. Job
// IDs come back node-qualified ("a:job-3") and every per-job route is
// resolved from the ID, independent of the ring. A submission whose
// routed node dies before acking retries transparently on the ring
// successor under a coordinator-minted idempotency token.
//
// The coordinator heartbeats each node's /healthz (EWMA-smoothed RTT,
// consecutive-failure thresholds) and distinguishes degraded from dead:
// a degraded node stops receiving new jobs but keeps its existing ones.
// With -auto-failover, a dead node heals itself: the coordinator
// verifies the node's shipped replicas (-sink-root), restores one onto
// a registered standby (-standby, or `bhpoctl standby`), and re-points
// the ring identity — no operator in the loop. Membership (runtime
// joins, leaves, standbys, automated replaces) persists in a crash-safe
// journal under -data-dir, so a restarted coordinator recovers the
// current ring, not the boot-time one.
//
// Usage:
//
//	bhpoctl [-addr :8150] -node a=http://h1:8149 -node b=http://h2:8149 ...
//	        [-standby s1=http://h9:8149]... [-sink-root /mnt/ship]...
//	        [-auto-failover] [-data-dir /var/lib/bhpoctl]
//	        [-replicas 64] [-probe-interval 1s] [-probe-timeout 1s]
//	        [-degraded-after 2] [-dead-after 6]
//	bhpoctl status  [-addr http://localhost:8150]
//	bhpoctl tenants [-addr http://localhost:8150]
//	bhpoctl join    [-addr ...] -node c -url http://h3:8149
//	bhpoctl drain   [-addr ...] -node c
//	bhpoctl leave   [-addr ...] -node c [-deadline 30s]
//	bhpoctl standby [-addr ...] -node s1 -url http://h9:8149 [-remove]
//	bhpoctl replace [-addr ...] -node a -url http://h3:8149
//
// Extra endpoints beyond the worker API:
//
//	GET  /cluster          per-node state (alive|degraded|dead|draining|
//	                       standby|restoring), health, EWMA RTT, failure
//	                       streak, last-probe time
//	GET  /cluster/events   bounded incident log (joins, leaves, failovers,
//	                       restore failures)
//	POST /cluster/join     {"node","url"} — enter the ring live
//	POST /cluster/leave    {"node","deadline_sec"} — drain, wait, remove
//	POST /cluster/drain    {"node"} — stop routing new jobs
//	POST /cluster/standby  {"node","url","remove"} — manage the spare pool
//	POST /cluster/replace  {"node","url"} — point a ring identity at a
//	                       replacement machine (the manual path)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"enhancedbhpo/internal/coord"
	"enhancedbhpo/internal/serve"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []coord.Node

func (n *nodeFlags) String() string {
	parts := make([]string, 0, len(*n))
	for _, nd := range *n {
		parts = append(parts, nd.Name+"="+nd.URL)
	}
	return strings.Join(parts, ",")
}

func (n *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*n = append(*n, coord.Node{Name: name, URL: url})
	return nil
}

// stringList collects a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	if v == "" {
		return errors.New("empty value")
	}
	*s = append(*s, v)
	return nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "status":
			os.Exit(statusMain(os.Args[2:], os.Stdout))
		case "tenants":
			os.Exit(tenantsMain(os.Args[2:], os.Stdout))
		case "replace":
			os.Exit(memberMain("replace", os.Args[2:]))
		case "join":
			os.Exit(memberMain("join", os.Args[2:]))
		case "drain":
			os.Exit(memberMain("drain", os.Args[2:]))
		case "leave":
			os.Exit(memberMain("leave", os.Args[2:]))
		case "standby":
			os.Exit(memberMain("standby", os.Args[2:]))
		}
	}
	var nodes, standbys nodeFlags
	var sinkRoots stringList
	var (
		addr      = flag.String("addr", ":8150", "listen address")
		replicas  = flag.Int("replicas", 0, "virtual nodes per worker on the hash ring (0 = 64)")
		probeIntv = flag.Duration("probe-interval", time.Second, "heartbeat probe interval")
		probeTmo  = flag.Duration("probe-timeout", 0, "per-probe timeout (0 = probe interval)")
		degraded  = flag.Int("degraded-after", 2, "consecutive probe failures before a node is degraded (no new jobs)")
		dead      = flag.Int("dead-after", 6, "consecutive probe failures before a node is dead (range served by successors)")
		dataDir   = flag.String("data-dir", "", "directory for the crash-safe membership journal (empty = membership not persisted)")
		autoFail  = flag.Bool("auto-failover", false, "restore dead nodes onto standbys automatically (needs -sink-root and a standby pool)")
	)
	flag.Var(&nodes, "node", "worker as name=url (repeatable)")
	flag.Var(&standbys, "standby", "standby node as name=url (repeatable); spares for automated failover")
	flag.Var(&sinkRoots, "sink-root", "shipped-replica root holding one subdirectory per node (repeatable)")
	flag.Parse()
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "bhpoctl: at least one -node name=url is required")
		os.Exit(2)
	}
	cfg := coord.Config{
		Nodes:    nodes,
		Standbys: standbys,
		Replicas: *replicas,
		Probe: coord.ProbeOptions{
			Interval:      *probeIntv,
			Timeout:       *probeTmo,
			DegradedAfter: *degraded,
			DeadAfter:     *dead,
		},
		DataDir:      *dataDir,
		SinkRoots:    sinkRoots,
		AutoFailover: *autoFail,
	}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg coord.Config) error {
	c, err := coord.New(cfg)
	if err != nil {
		return err
	}
	c.Start()
	defer c.Shutdown()
	srv := &http.Server{Addr: addr, Handler: c}
	errc := make(chan error, 1)
	go func() {
		log.Printf("bhpoctl coordinating %d nodes on %s", len(cfg.Nodes), addr)
		errc <- srv.ListenAndServe()
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("bhpoctl: %v, shutting down", sig)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// statusMain implements `bhpoctl status`: render GET /cluster as a
// table. Exit code 0 only when every ring member is alive — standbys
// are spares and do not fail the check — so `bhpoctl status` doubles as
// a health gate in scripts and CI.
func statusMain(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8150", "coordinator address")
	fs.Parse(args)
	resp, err := http.Get(strings.TrimSuffix(*addr, "/") + "/cluster")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl:", err)
		return 1
	}
	defer resp.Body.Close()
	var nodes []coord.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl: decoding:", err)
		return 1
	}
	return renderStatus(out, nodes)
}

// renderStatus prints the node table and computes the exit code —
// factored out of statusMain so tests can feed it statuses directly.
func renderStatus(out io.Writer, nodes []coord.NodeStatus) int {
	fmt.Fprintf(out, "%-12s %-10s %-10s %8s %8s %10s  %s\n",
		"NODE", "STATE", "HEALTH", "RTT", "PENDING", "PROBED", "URL")
	exit := 0
	for _, n := range nodes {
		probed := "-"
		if !n.LastProbe.IsZero() {
			probed = fmt.Sprintf("%.1fs ago", time.Since(n.LastProbe).Seconds())
		}
		name := n.Name
		if n.Quarantined {
			name += "!"
		}
		fmt.Fprintf(out, "%-12s %-10s %-10s %7.1fms %8d %10s  %s\n",
			name, n.State, orDash(n.Health), n.RTTMillis, n.Pending, probed, n.URL)
		if n.LastError != "" {
			fmt.Fprintf(out, "%-12s   last error: %s\n", "", n.LastError)
		}
		// Any member not alive (dead, degraded, draining, restoring) makes
		// the check fail; standbys are spares, not members.
		if n.State != coord.StateAlive && n.State != coord.StateStandby {
			exit = 1
		}
	}
	return exit
}

// tenantsMain implements `bhpoctl tenants`: render GET /tenants — the
// coordinator's cluster-wide merge or a single daemon's own view, both
// serve the same shape — as a per-tenant accounting table.
func tenantsMain(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("tenants", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8150", "coordinator (or daemon) address")
	fs.Parse(args)
	resp, err := http.Get(strings.TrimSuffix(*addr, "/") + "/tenants")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(os.Stderr, "bhpoctl: %s: %s\n", resp.Status, strings.TrimSpace(string(body)))
		return 1
	}
	var payload struct {
		Tenants []serve.TenantStatus `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl: decoding:", err)
		return 1
	}
	return renderTenants(out, payload.Tenants)
}

// renderTenants prints the per-tenant table — factored out of
// tenantsMain so tests can feed it statuses directly.
func renderTenants(out io.Writer, tenants []serve.TenantStatus) int {
	fmt.Fprintf(out, "%-16s %6s %7s %7s %6s %6s %8s %10s %6s %8s\n",
		"TENANT", "WEIGHT", "QUEUED", "RUNNING", "DONE", "FAIL", "EVALS", "SERVICE", "SHED", "PREEMPTS")
	for _, t := range tenants {
		fmt.Fprintf(out, "%-16s %6d %7d %7d %6d %6d %8d %10.1f %6d %8d\n",
			t.Tenant, t.Weight, t.JobsQueued, t.JobsRunning, t.JobsDone,
			t.JobsFailed+t.JobsCancelled, t.Evaluations, t.ServiceUnits,
			t.Shed, t.Preemptions)
	}
	return 0
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// memberMain implements the membership subcommands (join, leave, drain,
// standby, replace): one POST to the matching /cluster/ endpoint.
func memberMain(cmd string, args []string) int {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8150", "coordinator address")
	node := fs.String("node", "", "node name")
	url := fs.String("url", "", "node URL (join, standby, replace)")
	deadline := fs.Duration("deadline", 30*time.Second, "leave: how long to wait for running jobs")
	remove := fs.Bool("remove", false, "standby: deregister instead of register")
	fs.Parse(args)
	if *node == "" {
		fmt.Fprintf(os.Stderr, "bhpoctl: %s needs -node\n", cmd)
		return 2
	}
	body := map[string]any{"node": *node}
	switch cmd {
	case "join", "replace":
		if *url == "" {
			fmt.Fprintf(os.Stderr, "bhpoctl: %s needs -url\n", cmd)
			return 2
		}
		body["url"] = *url
	case "standby":
		if *remove {
			body["remove"] = true
		} else if *url == "" {
			fmt.Fprintln(os.Stderr, "bhpoctl: standby needs -url (or -remove)")
			return 2
		} else {
			body["url"] = *url
		}
	case "leave":
		body["deadline_sec"] = deadline.Seconds()
	}
	payload, _ := json.Marshal(body)
	resp, err := http.Post(strings.TrimSuffix(*addr, "/")+"/cluster/"+cmd,
		"application/json", bytes.NewReader(payload))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl:", err)
		return 1
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "bhpoctl: %s: %s\n", resp.Status, strings.TrimSpace(string(out)))
		return 1
	}
	os.Stdout.Write(out)
	return 0
}

// Command bhpoctl is the bhpod cluster coordinator: it serves the same
// HTTP API as a single daemon — POST /jobs, GET /jobs/{id}, DELETE,
// the SSE event feed, /methods, /metrics, /healthz — over a set of
// worker nodes, so clients (curl, bhpo watch) talk to one address and
// the cluster looks like one big bhpod.
//
// Jobs route by consistent hash on their evaluation-cache scope (the
// dataset/scale/seed/folds fingerprint), so jobs that share synthesized
// data and cached fold scores land on the same node and stay warm. Job
// IDs come back node-qualified ("a:job-3") and every per-job route is
// resolved from the ID, independent of the ring.
//
// The coordinator heartbeats each node's /healthz (EWMA-smoothed RTT,
// consecutive-failure thresholds) and distinguishes degraded from dead:
// a degraded node stops receiving new jobs but keeps its existing ones;
// a dead node's hash range is served by its ring successors, and its
// per-job routes answer 503 (retryable) until an operator restores the
// node's shipped replica elsewhere (bhpod -restore-from) and re-points
// the name with `bhpoctl replace` — after which the same job IDs, the
// same curves and the same SSE sequence numbers flow from the new
// machine.
//
// Usage:
//
//	bhpoctl [-addr :8150] -node a=http://h1:8149 -node b=http://h2:8149 ...
//	        [-replicas 64] [-probe-interval 1s] [-probe-timeout 1s]
//	        [-degraded-after 2] [-dead-after 6]
//	bhpoctl status  [-addr http://localhost:8150]
//	bhpoctl replace [-addr http://localhost:8150] -node a -url http://h3:8149
//
// Extra endpoints beyond the worker API:
//
//	GET  /cluster          per-node state (alive/degraded/dead, health,
//	                       RTT, failure streak)
//	POST /cluster/replace  {"node": "a", "url": "..."} — point a ring
//	                       identity at a replacement machine
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"enhancedbhpo/internal/coord"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []coord.Node

func (n *nodeFlags) String() string {
	parts := make([]string, 0, len(*n))
	for _, nd := range *n {
		parts = append(parts, nd.Name+"="+nd.URL)
	}
	return strings.Join(parts, ",")
}

func (n *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*n = append(*n, coord.Node{Name: name, URL: url})
	return nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "status":
			os.Exit(statusMain(os.Args[2:]))
		case "replace":
			os.Exit(replaceMain(os.Args[2:]))
		}
	}
	var nodes nodeFlags
	var (
		addr      = flag.String("addr", ":8150", "listen address")
		replicas  = flag.Int("replicas", 0, "virtual nodes per worker on the hash ring (0 = 64)")
		probeIntv = flag.Duration("probe-interval", time.Second, "heartbeat probe interval")
		probeTmo  = flag.Duration("probe-timeout", 0, "per-probe timeout (0 = probe interval)")
		degraded  = flag.Int("degraded-after", 2, "consecutive probe failures before a node is degraded (no new jobs)")
		dead      = flag.Int("dead-after", 6, "consecutive probe failures before a node is dead (range served by successors)")
	)
	flag.Var(&nodes, "node", "worker as name=url (repeatable)")
	flag.Parse()
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "bhpoctl: at least one -node name=url is required")
		os.Exit(2)
	}
	cfg := coord.Config{
		Nodes:    nodes,
		Replicas: *replicas,
		Probe: coord.ProbeOptions{
			Interval:      *probeIntv,
			Timeout:       *probeTmo,
			DegradedAfter: *degraded,
			DeadAfter:     *dead,
		},
	}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg coord.Config) error {
	c, err := coord.New(cfg)
	if err != nil {
		return err
	}
	c.Start()
	defer c.Shutdown()
	srv := &http.Server{Addr: addr, Handler: c}
	errc := make(chan error, 1)
	go func() {
		log.Printf("bhpoctl coordinating %d nodes on %s", len(cfg.Nodes), addr)
		errc <- srv.ListenAndServe()
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("bhpoctl: %v, shutting down", sig)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// statusMain implements `bhpoctl status`: pretty-print GET /cluster.
func statusMain(args []string) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8150", "coordinator address")
	fs.Parse(args)
	resp, err := http.Get(strings.TrimSuffix(*addr, "/") + "/cluster")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl:", err)
		return 1
	}
	defer resp.Body.Close()
	var nodes []coord.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl: decoding:", err)
		return 1
	}
	for _, n := range nodes {
		line := fmt.Sprintf("%-12s %-9s %-10s rtt=%.1fms pending=%d %s",
			n.Name, n.State, orDash(n.Health), n.RTTMillis, n.Pending, n.URL)
		if n.LastError != "" {
			line += "  (" + n.LastError + ")"
		}
		fmt.Println(line)
	}
	return 0
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// replaceMain implements `bhpoctl replace`: POST /cluster/replace.
func replaceMain(args []string) int {
	fs := flag.NewFlagSet("replace", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8150", "coordinator address")
	node := fs.String("node", "", "ring identity to re-point")
	url := fs.String("url", "", "replacement node's URL")
	fs.Parse(args)
	if *node == "" || *url == "" {
		fmt.Fprintln(os.Stderr, "bhpoctl: replace needs -node and -url")
		return 2
	}
	body, _ := json.Marshal(map[string]string{"node": *node, "url": *url})
	resp, err := http.Post(strings.TrimSuffix(*addr, "/")+"/cluster/replace",
		"application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpoctl:", err)
		return 1
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "bhpoctl: %s: %s\n", resp.Status, strings.TrimSpace(string(out)))
		return 1
	}
	os.Stdout.Write(out)
	return 0
}

// Command benchjson converts `go test -bench` output into a JSON
// artifact. It reads the benchmark stream on stdin, echoes it unchanged
// to stdout (so `make bench` stays watchable), and writes the parsed
// results plus environment metadata to -out:
//
//	go test -run '^$' -bench 'BenchmarkMat' -benchmem . | benchjson -out BENCH_kernels.json
//
// Each benchmark line becomes {name, iterations, ns_per_op, bytes_per_op,
// allocs_per_op}; header lines (goos/goarch/pkg/cpu) become metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the artifact schema.
type File struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	CPU        string      `json:"cpu,omitempty"`
	Generated  string      `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "JSON file to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	f := File{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			f.CPU = strings.TrimSpace(cpu)
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
}

// parseBenchLine parses one `BenchmarkX-N  iters  123 ns/op  4 B/op  5
// allocs/op` line; the unit pairs after the iteration count may appear in
// any order and number.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// Command experiments regenerates the paper's tables and figures on the
// simulated datasets.
//
// Usage:
//
//	experiments -exp table4|table5|fig3|fig4|fig5|fig6|fig7|prop1|all \
//	    [-scale 0.35] [-seeds 3] [-configs 162] [-hps 4] [-iters 20] \
//	    [-datasets a9a,usps] [-fast]
//
// The defaults run a laptop-scale protocol; -fast shrinks everything for a
// quick smoke pass, and raising -scale/-seeds/-configs approaches the
// paper's full protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"enhancedbhpo/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: table4, table5, fig3, fig4, fig5, fig6, fig7, prop1, baselines, anytime, ablations, all")
		scale    = flag.Float64("scale", 0, "dataset scale factor (0 = default 0.35)")
		seeds    = flag.Int("seeds", 0, "number of random seeds (0 = default 3; paper uses 5)")
		configs  = flag.Int("configs", 0, "max configurations for HPO experiments (0 = default 162)")
		hps      = flag.Int("hps", 0, "number of Table III hyperparameters (0 = default 4)")
		iters    = flag.Int("iters", 0, "MLP training epochs (0 = default 20)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (empty = experiment defaults)")
		fast     = flag.Bool("fast", false, "use the fast smoke settings")
		verbose  = flag.Bool("v", false, "log per-dataset progress to stderr")
		outDir   = flag.String("out", "", "also write each experiment's output to <dir>/<exp>.txt")
	)
	flag.Parse()

	s := experiments.Settings{
		Scale:      *scale,
		Seeds:      *seeds,
		MaxConfigs: *configs,
		NumHPs:     *hps,
		MaxIter:    *iters,
	}
	if *fast {
		s = experiments.FastSettings()
	}
	if *verbose {
		s.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *datasets != "" {
		s.Datasets = strings.Split(*datasets, ",")
	}

	if err := run(*exp, s, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, s experiments.Settings, outDir string) error {
	todo := []string{exp}
	switch exp {
	case "all":
		todo = []string{"table2", "fig3", "prop1", "table5", "fig5", "fig6", "fig7", "fig4", "table4", "baselines", "anytime", "ablations", "robustness", "extended", "stability"}
	case "cv":
		// The cross-validation experiments share ground truths through the
		// in-process cache; running them together avoids recomputing the
		// full-data trainings per experiment.
		todo = []string{"table5", "fig5", "fig6", "fig7", "ablations"}
	case "hpo":
		todo = []string{"fig4", "table4", "baselines", "anytime", "robustness", "extended"}
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range todo {
		if err := runOne(e, s, outDir); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runOne(exp string, s experiments.Settings, outDir string) error {
	var w io.Writer = os.Stdout
	if outDir != "" {
		f, err := os.Create(filepath.Join(outDir, exp+".txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	switch exp {
	case "table2":
		experiments.RunTable2(s).Print(w)
	case "table4":
		res, err := experiments.RunTable4(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "table5":
		res, err := experiments.RunTable5(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "fig3":
		experiments.RunFig3().Print(w)
	case "fig4":
		res, err := experiments.RunFig4(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "fig5":
		res, err := experiments.RunFig5(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "fig6":
		res, err := experiments.RunFig6(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "fig7":
		res, err := experiments.RunFig7(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "prop1":
		experiments.RunProp1().Print(w)
	case "baselines":
		res, err := experiments.RunBaselines(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "anytime":
		res, err := experiments.RunAnytime(s)
		if err != nil {
			return err
		}
		res.Print(w)
		if outDir != "" {
			// The curves use the same serialization as bhpod's /jobs
			// endpoint, so one set of tooling plots either source.
			f, err := os.Create(filepath.Join(outDir, "anytime.json"))
			if err != nil {
				return err
			}
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
	case "ablations":
		res, err := experiments.RunAblations(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "robustness":
		res, err := experiments.RunRobustness(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "extended":
		res, err := experiments.RunExtended(s)
		if err != nil {
			return err
		}
		res.Print(w)
	case "stability":
		res, err := experiments.RunStability(s)
		if err != nil {
			return err
		}
		res.Print(w)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

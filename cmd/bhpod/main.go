// Command bhpod is the HPO job service: a long-running HTTP daemon that
// accepts hyperparameter-optimization job submissions, runs them on a
// shared bounded worker pool with a per-dataset evaluation cache, and
// reports live anytime curves while jobs are in flight.
//
// With -data-dir set the daemon is crash-safe: job specs and terminal
// results are journaled to an append-only JSONL log, and a restarted
// daemon rebuilds its job table from the journal — finished jobs keep
// their results and anytime curves, jobs that were mid-run come back as
// cancelled with reason "interrupted", and jobs that were still queued
// are re-enqueued and run again.
//
// The daemon also governs its own resources under load: submissions
// beyond -max-pending queued jobs are shed with 429 + Retry-After
// (priced from the observed evaluation latency), an evaluation running
// past -eval-timeout is abandoned so it cannot hold a pool slot forever,
// the journal rotates and re-compacts online once its active segment
// passes -journal-max-bytes, and dataset scopes idle longer than
// -scope-ttl release their memory (rebuilt deterministically on next
// use).
//
// Every job also streams its telemetry live: curve points, rung
// promotions, retries, deadline abandonments, failure-budget charges and
// lifecycle transitions are published to GET /jobs/{id}/events as
// Server-Sent Events (resumable via Last-Event-ID), and — with -data-dir
// set — recorded durably to a per-job trace file so GET /jobs/{id}/trace
// serves the full anytime curve even after a crash and restart. `bhpo
// watch <job-url>` is the terminal client for the feed.
//
// As a cluster member the daemon can ship its journal segments and trace
// files to a replica sink while it runs (-ship-to, either a directory or
// a peer node's /ship receiver), receive peers' replicas
// (-ship-recv-dir), and start as a *replacement* for a dead node by
// restoring a shipped replica into its data directory (-restore-from)
// before replaying it — mid-run jobs come back as interrupted, trace
// sequence numbers continue, and the coordinator (bhpoctl) re-points the
// dead node's name at the new address.
//
// Usage:
//
//	bhpod [-addr :8149] [-workers N] [-max-jobs 4] [-max-pending 64]
//	      [-cache-entries 65536] [-data-dir DIR] [-drain-timeout 30s]
//	      [-eval-attempts 2] [-retry-backoff 50ms] [-failure-budget 3]
//	      [-eval-timeout 0] [-journal-max-bytes 4194304] [-scope-ttl 0]
//	      [-event-buffer 256] [-trace-max-bytes 1048576]
//	      [-kernel-workers 0] [-fuse-evals] [-pprof]
//	      [-node NAME] [-ship-to DIR|URL] [-ship-interval 250ms]
//	      [-ship-sync] [-ship-recv-dir DIR] [-restore-from DIR]
//
// Endpoints:
//
//	POST   /jobs               submit a job (JSON spec: dataset, method,
//	                           ...); 429 + Retry-After when overloaded,
//	                           503 draining
//	GET    /jobs               list jobs
//	GET    /jobs/{id}          job status + incumbent curve (?since=N for
//	                           only the curve points past event seq N)
//	GET    /jobs/{id}/events   live job telemetry as SSE (Last-Event-ID
//	                           resume)
//	GET    /jobs/{id}/trace    full anytime curve, durable across restarts
//	                           (?events=1 for the raw event log)
//	DELETE /jobs/{id}          cancel a job (idempotent on finished jobs)
//	GET    /healthz            health probe ("ok", "overloaded" or "draining")
//	GET    /metrics            service counters
//	POST   /ship/{node}/...    peer journal-shipping receiver (only with
//	                           -ship-recv-dir)
//	GET    /debug/pprof/*      live profiling (only with -pprof)
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions are
// refused with 503, in-flight evaluations get -drain-timeout to finish,
// every outcome is journaled, and then the process exits.
//
// See the README's "Running the service" section for a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/serve"
	"enhancedbhpo/internal/serve/shipper"
)

func main() {
	var (
		addr     = flag.String("addr", ":8149", "listen address")
		workers  = flag.Int("workers", runtime.NumCPU(), "shared evaluation pool size across all jobs")
		maxJobs  = flag.Int("max-jobs", 4, "max concurrently running jobs (excess stay queued)")
		maxPend  = flag.Int("max-pending", 64, "max queued jobs before POST /jobs sheds load with 429 + Retry-After")
		evalTmo  = flag.Duration("eval-timeout", 0, "abandon an evaluation running longer than this, freeing its pool slot (0 = no deadline)")
		cacheN   = flag.Int("cache-entries", 1<<16, "evaluation cache entries per dataset scope (LRU)")
		dataDir  = flag.String("data-dir", "", "journal directory for crash-safe job persistence (empty = in-memory only)")
		jrnlMax  = flag.Int64("journal-max-bytes", 4<<20, "rotate + re-compact the journal once its active segment passes this size (negative = never)")
		scopeTTL = flag.Duration("scope-ttl", 0, "release an idle dataset scope's memory after this long unused; rebuilt on next use (0 = keep forever)")
		drainTmo = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight jobs may finish after SIGTERM before being cancelled")
		attempts = flag.Int("eval-attempts", 2, "total tries per evaluation before it counts as a failure")
		backoff  = flag.Duration("retry-backoff", 50*time.Millisecond, "base (jittered) delay between evaluation retries")
		failures = flag.Int("failure-budget", 3, "evaluation failures a job absorbs before it is failed")
		eventBuf = flag.Int("event-buffer", 256, "buffered events per SSE subscriber; a slower consumer has events dropped from its stream (resumable via Last-Event-ID)")
		traceMax = flag.Int64("trace-max-bytes", 1<<20, "compact a job's durable trace file once it grows this much past its last compaction (negative = never; needs -data-dir)")
		kernelW  = flag.Int("kernel-workers", 0, "matmul goroutines per pooled evaluation (0 = NumCPU/workers, so the pool never oversubscribes)")
		fuseOn   = flag.Bool("fuse-evals", true, "batch concurrent same-budget evaluations through the fused lockstep trainer (results are bitwise-identical either way)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")

		nodeName = flag.String("node", "", "cluster node name (ring identity under a bhpoctl coordinator; required with -ship-to)")
		shipTo   = flag.String("ship-to", "", "replicate the journal + traces to this sink: a directory, or a peer node's URL (its /ship receiver); needs -data-dir and -node")
		shipIntv = flag.Duration("ship-interval", 250*time.Millisecond, "background ship pass interval")
		shipSync = flag.Bool("ship-sync", false, "ship synchronously: every journal append reaches the sink before the write returns (a kill -9 loses no acknowledged job)")
		shipRecv = flag.String("ship-recv-dir", "", "accept peers' shipped replicas under /ship/, stored in this directory")
		restore  = flag.String("restore-from", "", "before starting, restore a shipped replica (a sink's node directory) into -data-dir — the replacement-node path")
	)
	flag.Parse()
	cfg := serve.Config{
		PoolSize:          *workers,
		MaxJobs:           *maxJobs,
		MaxPending:        *maxPend,
		EvalTimeout:       *evalTmo,
		CacheEntries:      *cacheN,
		DataDir:           *dataDir,
		JournalMaxBytes:   *jrnlMax,
		ScopeTTL:          *scopeTTL,
		EvalAttempts:      *attempts,
		RetryBackoff:      *backoff,
		FailureBudget:     *failures,
		EventBuffer:       *eventBuf,
		TraceMaxBytes:     *traceMax,
		KernelWorkers:     *kernelW,
		DisableEvalFusion: !*fuseOn,
		NodeName:          *nodeName,
	}
	cluster := clusterFlags{
		ShipTo:       *shipTo,
		ShipInterval: *shipIntv,
		ShipSync:     *shipSync,
		ShipRecvDir:  *shipRecv,
		RestoreFrom:  *restore,
	}
	if err := run(*addr, cfg, cluster, *drainTmo, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "bhpod:", err)
		os.Exit(1)
	}
}

// clusterFlags carries the journal-shipping and failover options.
type clusterFlags struct {
	ShipTo       string
	ShipInterval time.Duration
	ShipSync     bool
	ShipRecvDir  string
	RestoreFrom  string
}

// newShipper builds the sink named by -ship-to: an http(s) URL pushes to
// a peer's /ship receiver; anything else is a local directory, with the
// node name appended so several nodes can share one sink root.
func newShipper(dataDir, node string, fl clusterFlags) (*shipper.Shipper, error) {
	if dataDir == "" {
		return nil, errors.New("-ship-to needs -data-dir")
	}
	if node == "" {
		return nil, errors.New("-ship-to needs -node")
	}
	var sink shipper.Sink
	if strings.HasPrefix(fl.ShipTo, "http://") || strings.HasPrefix(fl.ShipTo, "https://") {
		base := strings.TrimSuffix(fl.ShipTo, "/")
		if !strings.HasSuffix(base, "/ship") {
			base += "/ship"
		}
		s, err := shipper.NewHTTPSink(base, node, nil)
		if err != nil {
			return nil, err
		}
		sink = s
	} else {
		s, err := shipper.NewDirSink(filepath.Join(fl.ShipTo, node))
		if err != nil {
			return nil, err
		}
		sink = s
	}
	return shipper.New(dataDir, sink, shipper.Options{
		Interval: fl.ShipInterval,
		Sync:     fl.ShipSync,
		OnError:  func(err error) { log.Printf("bhpod: ship: %v", err) },
	}), nil
}

func run(addr string, cfg serve.Config, cluster clusterFlags, drainTimeout time.Duration, pprofOn bool) error {
	if cluster.RestoreFrom != "" {
		if cfg.DataDir == "" {
			return errors.New("-restore-from needs -data-dir")
		}
		if err := shipper.Restore(cluster.RestoreFrom, cfg.DataDir); err != nil {
			return fmt.Errorf("restoring replica: %w", err)
		}
		log.Printf("bhpod: restored shipped replica %s into %s", cluster.RestoreFrom, cfg.DataDir)
	}
	var ship *shipper.Shipper
	if cluster.ShipTo != "" {
		var err error
		ship, err = newShipper(cfg.DataDir, cfg.NodeName, cluster)
		if err != nil {
			return err
		}
		defer ship.Close()
		cfg.Shipper = ship
		mode := "async"
		if cluster.ShipSync {
			mode = "sync"
		}
		log.Printf("bhpod: shipping journal + traces to %s (%s)", cluster.ShipTo, mode)
	}
	var manager *serve.Manager
	var err error
	if cfg.DataDir != "" {
		manager, err = serve.NewManagerFromJournal(cfg)
		if err != nil {
			return fmt.Errorf("recovering journal: %w", err)
		}
		log.Printf("bhpod: journal at %s recovered (%d jobs)", cfg.DataDir, len(manager.Jobs()))
	} else {
		manager = serve.NewManager(cfg)
	}
	handler := serve.NewServer(manager)
	// The service handler stays addressable (SetDraining below), so the
	// optional pprof and /ship endpoints go on a wrapper mux that falls
	// through to it for everything else.
	var root http.Handler = handler
	if pprofOn || cluster.ShipRecvDir != "" {
		mux := http.NewServeMux()
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("bhpod: pprof mounted at /debug/pprof/")
		}
		if cluster.ShipRecvDir != "" {
			recv, err := shipper.NewReceiver(cluster.ShipRecvDir)
			if err != nil {
				return err
			}
			mux.Handle("/ship/", http.StripPrefix("/ship", recv))
			log.Printf("bhpod: receiving peer replicas under /ship/ into %s", cluster.ShipRecvDir)
		}
		mux.Handle("/", handler)
		root = mux
	}
	srv := &http.Server{
		Addr:    addr,
		Handler: root,
	}

	errc := make(chan error, 1)
	go func() {
		kernel := mat.ActiveKernel().String()
		if feats := mat.CPUFeatures(); feats != "" {
			kernel += " [" + feats + "]"
		}
		log.Printf("bhpod listening on %s (pool=%d, max-jobs=%d, kernel=%s, fuse-evals=%v)",
			addr, cfg.PoolSize, cfg.MaxJobs, kernel, !cfg.DisableEvalFusion)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("bhpod: %v, draining (timeout %s)", sig, drainTimeout)
	}

	// Graceful drain: refuse new submissions, let in-flight evaluations
	// finish within the drain timeout, then cancel whatever remains with
	// reason "shutdown". Every terminal record is journaled before exit.
	handler.SetDraining(true)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := manager.Drain(drainCtx); err != nil {
		log.Printf("bhpod: drain timeout, cancelling remaining jobs")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := manager.Shutdown(ctx); err != nil {
		return fmt.Errorf("waiting for jobs: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

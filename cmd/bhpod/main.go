// Command bhpod is the HPO job service: a long-running HTTP daemon that
// accepts hyperparameter-optimization job submissions, runs them on a
// shared bounded worker pool with a per-dataset evaluation cache, and
// reports live anytime curves while jobs are in flight.
//
// Usage:
//
//	bhpod [-addr :8149] [-workers N] [-max-jobs 4] [-cache-entries 65536]
//
// Endpoints:
//
//	POST   /jobs        submit a job (JSON spec: dataset, method, ...)
//	GET    /jobs        list jobs
//	GET    /jobs/{id}   job status + incumbent curve
//	DELETE /jobs/{id}   cancel a job
//	GET    /healthz     liveness probe
//	GET    /metrics     service counters
//
// See the README's "Running the service" section for a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"enhancedbhpo/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8149", "listen address")
		workers = flag.Int("workers", runtime.NumCPU(), "shared evaluation pool size across all jobs")
		maxJobs = flag.Int("max-jobs", 4, "max concurrently running jobs (excess stay queued)")
		cacheN  = flag.Int("cache-entries", 1<<16, "evaluation cache entries per dataset scope")
	)
	flag.Parse()
	if err := run(*addr, *workers, *maxJobs, *cacheN); err != nil {
		fmt.Fprintln(os.Stderr, "bhpod:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, maxJobs, cacheEntries int) error {
	manager := serve.NewManager(serve.Config{
		PoolSize:     workers,
		MaxJobs:      maxJobs,
		CacheEntries: cacheEntries,
	})
	srv := &http.Server{
		Addr:    addr,
		Handler: serve.NewServer(manager),
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("bhpod listening on %s (pool=%d, max-jobs=%d)", addr, workers, maxJobs)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("bhpod: %v, shutting down", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := manager.Shutdown(ctx); err != nil {
		return fmt.Errorf("waiting for jobs: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Command bhpod is the HPO job service: a long-running HTTP daemon that
// accepts hyperparameter-optimization job submissions, runs them on a
// shared bounded worker pool with a per-dataset evaluation cache, and
// reports live anytime curves while jobs are in flight.
//
// With -data-dir set the daemon is crash-safe: job specs and terminal
// results are journaled to an append-only JSONL log, and a restarted
// daemon rebuilds its job table from the journal — finished jobs keep
// their results and anytime curves, jobs that were mid-run come back as
// cancelled with reason "interrupted", and jobs that were still queued
// are re-enqueued and run again.
//
// The daemon also governs its own resources under load: submissions
// beyond -max-pending queued jobs are shed with 429 + Retry-After
// (priced from the observed evaluation latency), an evaluation running
// past -eval-timeout is abandoned so it cannot hold a pool slot forever,
// the journal rotates and re-compacts online once its active segment
// passes -journal-max-bytes, and dataset scopes idle longer than
// -scope-ttl release their memory (rebuilt deterministically on next
// use).
//
// Every job also streams its telemetry live: curve points, rung
// promotions, retries, deadline abandonments, failure-budget charges and
// lifecycle transitions are published to GET /jobs/{id}/events as
// Server-Sent Events (resumable via Last-Event-ID), and — with -data-dir
// set — recorded durably to a per-job trace file so GET /jobs/{id}/trace
// serves the full anytime curve even after a crash and restart. `bhpo
// watch <job-url>` is the terminal client for the feed.
//
// As a cluster member the daemon can ship its journal segments and trace
// files to replica sinks while it runs (-ship-to, repeatable: each a
// directory or a peer node's /ship receiver, every sink tracking its own
// resumable offsets), receive peers' replicas (-ship-recv-dir), and
// start as a *replacement* for a dead node by restoring a shipped
// replica into its data directory (-restore-from, repeatable: the first
// replica whose manifest checksums verify wins) before replaying it —
// mid-run jobs come back as interrupted, trace sequence numbers
// continue, and the coordinator (bhpoctl) re-points the dead node's name
// at the new address.
//
// With -standby the daemon instead boots as a blank spare: it answers
// /healthz with {"status":"standby"} and waits for a coordinator's
// POST /restore, at which point it restores the named dead node's
// replica under -data-dir, becomes that node (same flags as a normal
// worker, shipping included), and starts serving its jobs — the
// automated half of bhpoctl's -auto-failover.
//
// Usage:
//
//	bhpod [-addr :8149] [-workers N] [-max-jobs 4] [-max-pending 64]
//	      [-cache-entries 65536] [-data-dir DIR] [-drain-timeout 30s]
//	      [-eval-attempts 2] [-retry-backoff 50ms] [-failure-budget 3]
//	      [-eval-timeout 0] [-journal-max-bytes 4194304] [-scope-ttl 0]
//	      [-event-buffer 256] [-trace-max-bytes 1048576]
//	      [-kernel-workers 0] [-fuse-evals] [-pprof]
//	      [-node NAME] [-ship-to DIR|URL]... [-ship-interval 250ms]
//	      [-ship-sync] [-ship-recv-dir DIR] [-restore-from DIR]...
//	      [-standby]
//
// Endpoints:
//
//	POST   /jobs               submit a job (JSON spec: dataset, method,
//	                           ...); 429 + Retry-After when overloaded,
//	                           503 draining
//	GET    /jobs               list jobs
//	GET    /jobs/{id}          job status + incumbent curve (?since=N for
//	                           only the curve points past event seq N)
//	GET    /jobs/{id}/events   live job telemetry as SSE (Last-Event-ID
//	                           resume)
//	GET    /jobs/{id}/trace    full anytime curve, durable across restarts
//	                           (?events=1 for the raw event log)
//	DELETE /jobs/{id}          cancel a job (idempotent on finished jobs)
//	GET    /healthz            health probe ("ok", "overloaded" or "draining")
//	GET    /metrics            service counters
//	POST   /ship/{node}/...    peer journal-shipping receiver (only with
//	                           -ship-recv-dir)
//	POST   /restore            standby promotion (only with -standby):
//	                           restore a dead node's replica and become it
//	GET    /debug/pprof/*      live profiling (only with -pprof)
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions are
// refused with 503, in-flight evaluations get -drain-timeout to finish,
// every outcome is journaled, and then the process exits.
//
// See the README's "Running the service" section for a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"enhancedbhpo/internal/mat"
	"enhancedbhpo/internal/serve"
	"enhancedbhpo/internal/serve/shipper"
)

// stringList collects a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	if v == "" {
		return errors.New("empty value")
	}
	*s = append(*s, v)
	return nil
}

func main() {
	var shipTo, restoreFrom stringList
	var (
		addr     = flag.String("addr", ":8149", "listen address")
		workers  = flag.Int("workers", runtime.NumCPU(), "shared evaluation pool size across all jobs")
		maxJobs  = flag.Int("max-jobs", 4, "max concurrently running jobs (excess stay queued)")
		maxPend  = flag.Int("max-pending", 64, "max queued jobs before POST /jobs sheds load with 429 + Retry-After")
		evalTmo  = flag.Duration("eval-timeout", 0, "abandon an evaluation running longer than this, freeing its pool slot (0 = no deadline)")
		cacheN   = flag.Int("cache-entries", 1<<16, "evaluation cache entries per dataset scope (LRU)")
		dataDir  = flag.String("data-dir", "", "journal directory for crash-safe job persistence (empty = in-memory only)")
		jrnlMax  = flag.Int64("journal-max-bytes", 4<<20, "rotate + re-compact the journal once its active segment passes this size (negative = never)")
		scopeTTL = flag.Duration("scope-ttl", 0, "release an idle dataset scope's memory after this long unused; rebuilt on next use (0 = keep forever)")
		drainTmo = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight jobs may finish after SIGTERM before being cancelled")
		attempts = flag.Int("eval-attempts", 2, "total tries per evaluation before it counts as a failure")
		backoff  = flag.Duration("retry-backoff", 50*time.Millisecond, "base (jittered) delay between evaluation retries")
		failures = flag.Int("failure-budget", 3, "evaluation failures a job absorbs before it is failed")
		eventBuf = flag.Int("event-buffer", 256, "buffered events per SSE subscriber; a slower consumer has events dropped from its stream (resumable via Last-Event-ID)")
		traceMax = flag.Int64("trace-max-bytes", 1<<20, "compact a job's durable trace file once it grows this much past its last compaction (negative = never; needs -data-dir)")
		kernelW  = flag.Int("kernel-workers", 0, "matmul goroutines per pooled evaluation (0 = NumCPU/workers, so the pool never oversubscribes)")
		fuseOn   = flag.Bool("fuse-evals", true, "batch concurrent same-budget evaluations through the fused lockstep trainer (results are bitwise-identical either way)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")

		tenantW     = flag.String("tenant-weights", "", "per-tenant fair-share weights as name=weight pairs, comma-separated (e.g. gold=3,free=1); unlisted tenants get -tenant-default-weight")
		tenantDefW  = flag.Int("tenant-default-weight", 1, "fair-share weight of tenants not named in -tenant-weights")
		tenantQuota = flag.Int("tenant-quota", 0, "max queued jobs per tenant before its submissions shed with 429 (0 = no per-tenant quota)")
		maxPreempts = flag.Int("max-preempts", 8, "max rung-boundary preemptions a single job absorbs before it runs to completion unpreempted (negative = preemption off)")

		nodeName = flag.String("node", "", "cluster node name (ring identity under a bhpoctl coordinator; required with -ship-to)")
		shipIntv = flag.Duration("ship-interval", 250*time.Millisecond, "background ship pass interval")
		shipSync = flag.Bool("ship-sync", false, "ship synchronously: every journal append reaches every sink before the write returns (a kill -9 loses no acknowledged job)")
		shipRecv = flag.String("ship-recv-dir", "", "accept peers' shipped replicas under /ship/, stored in this directory")
		standby  = flag.Bool("standby", false, "boot as a blank spare: wait for a coordinator's POST /restore, then become the restored node")
	)
	flag.Var(&shipTo, "ship-to", "replicate the journal + traces to this sink: a directory, or a peer node's URL (its /ship receiver); repeatable for N-way replication; needs -data-dir and -node")
	flag.Var(&restoreFrom, "restore-from", "before starting, restore a shipped replica (a sink's node directory) into -data-dir; repeatable — the first replica whose manifest verifies wins")
	flag.Parse()
	weights, err := parseTenantWeights(*tenantW)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpod: -tenant-weights:", err)
		os.Exit(2)
	}
	if *maxPreempts == 0 {
		// Flag semantics: 0 and negative both mean "never preempt" (the
		// config's zero value would select the default of 8).
		*maxPreempts = -1
	}
	cfg := serve.Config{
		PoolSize:            *workers,
		MaxJobs:             *maxJobs,
		MaxPending:          *maxPend,
		TenantWeights:       weights,
		TenantDefaultWeight: *tenantDefW,
		TenantQuota:         *tenantQuota,
		MaxPreempts:         *maxPreempts,
		EvalTimeout:         *evalTmo,
		CacheEntries:        *cacheN,
		DataDir:             *dataDir,
		JournalMaxBytes:     *jrnlMax,
		ScopeTTL:            *scopeTTL,
		EvalAttempts:        *attempts,
		RetryBackoff:        *backoff,
		FailureBudget:       *failures,
		EventBuffer:         *eventBuf,
		TraceMaxBytes:       *traceMax,
		KernelWorkers:       *kernelW,
		DisableEvalFusion:   !*fuseOn,
		NodeName:            *nodeName,
	}
	cluster := clusterFlags{
		ShipTo:       shipTo,
		ShipInterval: *shipIntv,
		ShipSync:     *shipSync,
		ShipRecvDir:  *shipRecv,
		RestoreFrom:  restoreFrom,
	}
	if *standby {
		err = runStandby(*addr, cfg, cluster, *drainTmo)
	} else {
		err = run(*addr, cfg, cluster, *drainTmo, *pprofOn)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bhpod:", err)
		os.Exit(1)
	}
}

// parseTenantWeights parses "name=weight,name=weight" into the serve
// config's weight map. An empty string means no per-tenant overrides.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad pair %q (want name=weight)", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want integer >= 1)", val, name)
		}
		out[name] = w
	}
	return out, nil
}

// clusterFlags carries the journal-shipping and failover options.
type clusterFlags struct {
	ShipTo       []string
	ShipInterval time.Duration
	ShipSync     bool
	ShipRecvDir  string
	RestoreFrom  []string
}

// newShipper builds one lane per -ship-to sink: an http(s) URL pushes to
// a peer's /ship receiver; anything else is a local directory, with the
// node name appended so several nodes can share one sink root. Each sink
// keeps its own resumable offsets, so one lagging or down sink never
// holds the others back.
func newShipper(dataDir, node string, fl clusterFlags) (*shipper.Shipper, error) {
	if dataDir == "" {
		return nil, errors.New("-ship-to needs -data-dir")
	}
	if node == "" {
		return nil, errors.New("-ship-to needs -node")
	}
	sinks := make([]shipper.Sink, 0, len(fl.ShipTo))
	for _, dest := range fl.ShipTo {
		if strings.HasPrefix(dest, "http://") || strings.HasPrefix(dest, "https://") {
			base := strings.TrimSuffix(dest, "/")
			if !strings.HasSuffix(base, "/ship") {
				base += "/ship"
			}
			s, err := shipper.NewHTTPSink(base, node, nil)
			if err != nil {
				return nil, err
			}
			sinks = append(sinks, s)
		} else {
			s, err := shipper.NewDirSink(filepath.Join(dest, node))
			if err != nil {
				return nil, err
			}
			sinks = append(sinks, s)
		}
	}
	return shipper.NewMulti(dataDir, sinks, shipper.Options{
		Interval: fl.ShipInterval,
		Sync:     fl.ShipSync,
		OnError:  func(err error) { log.Printf("bhpod: ship: %v", err) },
	}), nil
}

func run(addr string, cfg serve.Config, cluster clusterFlags, drainTimeout time.Duration, pprofOn bool) error {
	if len(cluster.RestoreFrom) > 0 {
		if cfg.DataDir == "" {
			return errors.New("-restore-from needs -data-dir")
		}
		if len(cluster.RestoreFrom) == 1 {
			// Single replica: restore in place (tolerates an existing,
			// possibly pre-created, data dir) — the original replacement path.
			if err := shipper.Restore(cluster.RestoreFrom[0], cfg.DataDir); err != nil {
				return fmt.Errorf("restoring replica: %w", err)
			}
			log.Printf("bhpod: restored shipped replica %s into %s", cluster.RestoreFrom[0], cfg.DataDir)
		} else {
			// Several replicas: the first whose manifest checksums verify
			// wins; a corrupt sink falls through to the next.
			src, err := shipper.RestoreAny(cluster.RestoreFrom, cfg.DataDir)
			if err != nil {
				return fmt.Errorf("restoring replica: %w", err)
			}
			log.Printf("bhpod: restored shipped replica %s into %s (of %d candidates)",
				src, cfg.DataDir, len(cluster.RestoreFrom))
		}
	}
	var ship *shipper.Shipper
	if len(cluster.ShipTo) > 0 {
		var err error
		ship, err = newShipper(cfg.DataDir, cfg.NodeName, cluster)
		if err != nil {
			return err
		}
		defer ship.Close()
		cfg.Shipper = ship
		mode := "async"
		if cluster.ShipSync {
			mode = "sync"
		}
		log.Printf("bhpod: shipping journal + traces to %s (%s)", strings.Join(cluster.ShipTo, ", "), mode)
	}
	var manager *serve.Manager
	var err error
	if cfg.DataDir != "" {
		manager, err = serve.NewManagerFromJournal(cfg)
		if err != nil {
			return fmt.Errorf("recovering journal: %w", err)
		}
		log.Printf("bhpod: journal at %s recovered (%d jobs)", cfg.DataDir, len(manager.Jobs()))
	} else {
		manager = serve.NewManager(cfg)
	}
	handler := serve.NewServer(manager)
	// The service handler stays addressable (SetDraining below), so the
	// optional pprof and /ship endpoints go on a wrapper mux that falls
	// through to it for everything else.
	var root http.Handler = handler
	if pprofOn || cluster.ShipRecvDir != "" {
		mux := http.NewServeMux()
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("bhpod: pprof mounted at /debug/pprof/")
		}
		if cluster.ShipRecvDir != "" {
			recv, err := shipper.NewReceiver(cluster.ShipRecvDir)
			if err != nil {
				return err
			}
			mux.Handle("/ship/", http.StripPrefix("/ship", recv))
			log.Printf("bhpod: receiving peer replicas under /ship/ into %s", cluster.ShipRecvDir)
		}
		mux.Handle("/", handler)
		root = mux
	}
	srv := &http.Server{
		Addr:    addr,
		Handler: root,
	}

	errc := make(chan error, 1)
	go func() {
		kernel := mat.ActiveKernel().String()
		if feats := mat.CPUFeatures(); feats != "" {
			kernel += " [" + feats + "]"
		}
		log.Printf("bhpod listening on %s (pool=%d, max-jobs=%d, kernel=%s, fuse-evals=%v)",
			addr, cfg.PoolSize, cfg.MaxJobs, kernel, !cfg.DisableEvalFusion)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("bhpod: %v, draining (timeout %s)", sig, drainTimeout)
	}

	// Graceful drain: refuse new submissions, let in-flight evaluations
	// finish within the drain timeout, then cancel whatever remains with
	// reason "shutdown". Every terminal record is journaled before exit.
	handler.SetDraining(true)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := manager.Drain(drainCtx); err != nil {
		log.Printf("bhpod: drain timeout, cancelling remaining jobs")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := manager.Shutdown(ctx); err != nil {
		return fmt.Errorf("waiting for jobs: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runStandby boots the daemon as a blank spare. It serves only /healthz
// ({"status":"standby"}) until a coordinator POSTs /restore naming a
// dead node and its verified replica directories; then it restores the
// replica under -data-dir/<node>, builds a full worker over the restored
// journal (shipping to the same -ship-to sinks, so the promoted node's
// history stays replicated), and atomically swaps it in — from that
// point it IS the node, same endpoints, same drain behavior.
func runStandby(addr string, cfg serve.Config, cluster clusterFlags, drainTimeout time.Duration) error {
	if cfg.DataDir == "" {
		return errors.New("-standby needs -data-dir")
	}
	// Set only after a successful promotion; read at shutdown to drain
	// whatever the standby became.
	var (
		mu      sync.Mutex
		manager *serve.Manager
		handler *serve.Server
		ship    *shipper.Shipper
	)
	sb := serve.NewStandby(serve.StandbyOptions{
		DataDir: cfg.DataDir,
		Activate: func(node, dataDir string) (http.Handler, error) {
			nodeCfg := cfg
			nodeCfg.DataDir = dataDir
			nodeCfg.NodeName = node
			var sh *shipper.Shipper
			if len(cluster.ShipTo) > 0 {
				var err error
				sh, err = newShipper(dataDir, node, cluster)
				if err != nil {
					return nil, err
				}
				nodeCfg.Shipper = sh
			}
			m, err := serve.NewManagerFromJournal(nodeCfg)
			if err != nil {
				if sh != nil {
					sh.Close()
				}
				return nil, fmt.Errorf("recovering restored journal: %w", err)
			}
			h := serve.NewServer(m)
			mu.Lock()
			manager, handler, ship = m, h, sh
			mu.Unlock()
			log.Printf("bhpod: standby promoted to node %s (%d jobs recovered)", node, len(m.Jobs()))
			return h, nil
		},
	})
	srv := &http.Server{Addr: addr, Handler: sb}
	errc := make(chan error, 1)
	go func() {
		log.Printf("bhpod standing by on %s (data dir %s)", addr, cfg.DataDir)
		errc <- srv.ListenAndServe()
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("bhpod: %v, shutting down standby (node %q)", sig, sb.Active())
	}
	mu.Lock()
	m, h, sh := manager, handler, ship
	mu.Unlock()
	if h != nil {
		h.SetDraining(true)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
		defer cancelDrain()
		if err := m.Drain(drainCtx); err != nil {
			log.Printf("bhpod: drain timeout, cancelling remaining jobs")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if m != nil {
		if err := m.Shutdown(ctx); err != nil {
			return fmt.Errorf("waiting for jobs: %w", err)
		}
	}
	if sh != nil {
		sh.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
